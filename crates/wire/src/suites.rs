//! Cipher-suite registry with the security-relevant properties the paper
//! classifies connections by.
//!
//! Every negotiated or advertised suite in the study is bucketed along
//! several axes: encryption mode (RC4 / CBC / AEAD, Figures 2–4),
//! key exchange (RSA / DHE / ECDHE, Figure 8), AEAD algorithm
//! (Figures 9–10), export grade, anonymous key exchange, NULL
//! encryption (Figure 7), and DES/3DES use (§5.6). This module defines
//! the property model; the exhaustive IANA table lives in
//! [`crate::suites_table`].

use core::fmt;

/// Key-exchange mechanism of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kx {
    /// NULL key exchange (only `TLS_NULL_WITH_NULL_NULL`).
    Null,
    /// RSA key transport.
    Rsa,
    /// Static Diffie-Hellman.
    Dh,
    /// Ephemeral Diffie-Hellman.
    Dhe,
    /// Static elliptic-curve Diffie-Hellman.
    Ecdh,
    /// Ephemeral elliptic-curve Diffie-Hellman.
    Ecdhe,
    /// Anonymous (unauthenticated) DH.
    DhAnon,
    /// Anonymous (unauthenticated) ECDH.
    EcdhAnon,
    /// Pre-shared key.
    Psk,
    /// DHE with PSK authentication.
    DhePsk,
    /// RSA key transport with PSK.
    RsaPsk,
    /// ECDHE with PSK authentication.
    EcdhePsk,
    /// Secure Remote Password.
    Srp,
    /// Kerberos 5.
    Krb5,
    /// Russian GOST key agreement.
    Gost,
    /// TLS 1.3 (key exchange lives in extensions; always (EC)DHE/PSK).
    Tls13,
    /// Signalling value, not a real suite (SCSVs).
    Scsv,
}

/// Server-authentication mechanism of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Auth {
    /// No authentication field (NULL suite or SCSV).
    Null,
    /// RSA signatures / RSA key transport.
    Rsa,
    /// DSA signatures.
    Dss,
    /// ECDSA signatures.
    Ecdsa,
    /// Anonymous: no server authentication at all.
    Anon,
    /// Pre-shared key.
    Psk,
    /// SRP password proof.
    Srp,
    /// Kerberos tickets.
    Krb5,
    /// GOST signatures.
    Gost,
    /// TLS 1.3 (authentication negotiated separately).
    Tls13,
}

/// Bulk encryption algorithm (and mode) of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the algorithm names
pub enum Enc {
    Null,
    Rc2Cbc40,
    Rc4_40,
    Rc4_56,
    Rc4_128,
    Des40Cbc,
    DesCbc,
    TripleDesCbc,
    IdeaCbc,
    SeedCbc,
    Aes128Cbc,
    Aes256Cbc,
    Aes128Gcm,
    Aes256Gcm,
    Aes128Ccm,
    Aes128Ccm8,
    Aes256Ccm,
    Aes256Ccm8,
    Camellia128Cbc,
    Camellia256Cbc,
    Camellia128Gcm,
    Camellia256Gcm,
    Aria128Cbc,
    Aria256Cbc,
    Aria128Gcm,
    Aria256Gcm,
    ChaCha20Poly1305,
    Gost28147,
}

/// Coarse encryption mode, the axis of Figures 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncMode {
    /// No encryption (NULL).
    None,
    /// Stream cipher (RC4, GOST CNT).
    Stream,
    /// CBC block-cipher mode.
    Cbc,
    /// Authenticated encryption with associated data.
    Aead,
}

/// AEAD algorithm breakdown, the axis of Figures 9–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AeadAlg {
    /// AES-128 in Galois/Counter Mode.
    Aes128Gcm,
    /// AES-256 in Galois/Counter Mode.
    Aes256Gcm,
    /// ChaCha20-Poly1305.
    ChaCha20Poly1305,
    /// AES in CCM mode (any key size / tag length).
    AesCcm,
    /// Camellia or ARIA GCM (rare; grouped as "other").
    Other,
}

impl Enc {
    /// Coarse mode of this algorithm.
    pub fn mode(self) -> EncMode {
        use Enc::*;
        match self {
            Null => EncMode::None,
            Rc4_40 | Rc4_56 | Rc4_128 | Gost28147 => EncMode::Stream,
            Rc2Cbc40 | Des40Cbc | DesCbc | TripleDesCbc | IdeaCbc | SeedCbc | Aes128Cbc
            | Aes256Cbc | Camellia128Cbc | Camellia256Cbc | Aria128Cbc | Aria256Cbc => EncMode::Cbc,
            Aes128Gcm | Aes256Gcm | Aes128Ccm | Aes128Ccm8 | Aes256Ccm | Aes256Ccm8
            | Camellia128Gcm | Camellia256Gcm | Aria128Gcm | Aria256Gcm | ChaCha20Poly1305 => {
                EncMode::Aead
            }
        }
    }

    /// Nominal key length in bits (0 for NULL).
    pub fn key_bits(self) -> u16 {
        use Enc::*;
        match self {
            Null => 0,
            Rc2Cbc40 | Rc4_40 | Des40Cbc => 40,
            Rc4_56 => 56,
            DesCbc => 56,
            Rc4_128 | IdeaCbc | SeedCbc | Aes128Cbc | Aes128Gcm | Aes128Ccm | Aes128Ccm8
            | Camellia128Cbc | Camellia128Gcm | Aria128Cbc | Aria128Gcm => 128,
            TripleDesCbc => 168,
            Aes256Cbc | Aes256Gcm | Aes256Ccm | Aes256Ccm8 | Camellia256Cbc | Camellia256Gcm
            | Aria256Cbc | Aria256Gcm | ChaCha20Poly1305 | Gost28147 => 256,
        }
    }

    /// Block size in bits for block ciphers; `None` for stream/NULL.
    ///
    /// The 64-bit entries are exactly the Sweet32-affected ciphers.
    pub fn block_bits(self) -> Option<u16> {
        use Enc::*;
        match self {
            Rc2Cbc40 | Des40Cbc | DesCbc | TripleDesCbc | IdeaCbc | Gost28147 => Some(64),
            SeedCbc | Aes128Cbc | Aes256Cbc | Aes128Gcm | Aes256Gcm | Aes128Ccm | Aes128Ccm8
            | Aes256Ccm | Aes256Ccm8 | Camellia128Cbc | Camellia256Cbc | Camellia128Gcm
            | Camellia256Gcm | Aria128Cbc | Aria256Cbc | Aria128Gcm | Aria256Gcm => Some(128),
            Null | Rc4_40 | Rc4_56 | Rc4_128 | ChaCha20Poly1305 => None,
        }
    }

    /// AEAD algorithm bucket, if this is an AEAD cipher.
    pub fn aead_alg(self) -> Option<AeadAlg> {
        use Enc::*;
        match self {
            Aes128Gcm => Some(AeadAlg::Aes128Gcm),
            Aes256Gcm => Some(AeadAlg::Aes256Gcm),
            ChaCha20Poly1305 => Some(AeadAlg::ChaCha20Poly1305),
            Aes128Ccm | Aes128Ccm8 | Aes256Ccm | Aes256Ccm8 => Some(AeadAlg::AesCcm),
            Camellia128Gcm | Camellia256Gcm | Aria128Gcm | Aria256Gcm => Some(AeadAlg::Other),
            _ => None,
        }
    }
}

/// MAC / PRF-hash field of a suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the algorithm names
pub enum Mac {
    Null,
    Md5,
    Sha1,
    Sha256,
    Sha384,
    /// AEAD suites carry no separate MAC.
    Aead,
    GostImit,
}

/// Full property record for one registered cipher suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteInfo {
    /// IANA code point.
    pub id: u16,
    /// IANA name without the `TLS_` prefix.
    pub name: &'static str,
    /// Key exchange.
    pub kx: Kx,
    /// Server authentication.
    pub auth: Auth,
    /// Bulk encryption.
    pub enc: Enc,
    /// MAC.
    pub mac: Mac,
    /// True for export-grade (40/56-bit, EXPORT-named) suites.
    pub export: bool,
}

/// A cipher-suite code point as it appears on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CipherSuite(pub u16);

impl CipherSuite {
    /// Registry lookup; `None` for unregistered/GREASE values.
    pub fn info(self) -> Option<&'static SuiteInfo> {
        crate::suites_table::lookup(self.0)
    }

    /// IANA name (with `TLS_` prefix) or `None` if unregistered.
    pub fn name(self) -> Option<&'static str> {
        self.info().map(|i| i.name)
    }

    /// True for the two signalling values (`EMPTY_RENEGOTIATION_INFO_SCSV`,
    /// `FALLBACK_SCSV`). Signalling values are excluded from all cipher
    /// classification: advertising an SCSV is not advertising a cipher.
    pub fn is_signaling(self) -> bool {
        matches!(self.0, 0x00ff | 0x5600)
    }

    fn prop(self, f: impl Fn(&SuiteInfo) -> bool) -> bool {
        match self.info() {
            Some(i) if i.kx != Kx::Scsv => f(i),
            _ => false,
        }
    }

    /// RC4 encryption (any key size).
    pub fn is_rc4(self) -> bool {
        self.prop(|i| matches!(i.enc, Enc::Rc4_40 | Enc::Rc4_56 | Enc::Rc4_128))
    }

    /// CBC-mode encryption.
    pub fn is_cbc(self) -> bool {
        self.prop(|i| i.enc.mode() == EncMode::Cbc)
    }

    /// AEAD encryption.
    pub fn is_aead(self) -> bool {
        self.prop(|i| i.enc.mode() == EncMode::Aead)
    }

    /// Single DES (including 40-bit export DES).
    pub fn is_des(self) -> bool {
        self.prop(|i| matches!(i.enc, Enc::Des40Cbc | Enc::DesCbc))
    }

    /// Triple-DES.
    pub fn is_3des(self) -> bool {
        self.prop(|i| i.enc == Enc::TripleDesCbc)
    }

    /// Export-grade suite (FREAK/Logjam surface).
    pub fn is_export(self) -> bool {
        self.prop(|i| i.export)
    }

    /// Anonymous key exchange: no server authentication ("Anon" in the
    /// IANA name). The paper counts 19 such suites.
    pub fn is_anon(self) -> bool {
        self.prop(|i| i.auth == Auth::Anon)
    }

    /// NULL encryption (integrity only, plaintext payload).
    pub fn is_null_encryption(self) -> bool {
        self.prop(|i| i.enc == Enc::Null)
    }

    /// The fully null suite `TLS_NULL_WITH_NULL_NULL`.
    pub fn is_null_null(self) -> bool {
        self.0 == 0x0000
    }

    /// Forward-secret key establishment (ephemeral (EC)DH, SRP, or
    /// TLS 1.3).
    pub fn is_forward_secret(self) -> bool {
        self.prop(|i| {
            matches!(
                i.kx,
                Kx::Dhe
                    | Kx::Ecdhe
                    | Kx::DhAnon
                    | Kx::EcdhAnon
                    | Kx::DhePsk
                    | Kx::EcdhePsk
                    | Kx::Srp
                    | Kx::Tls13
            )
        })
    }

    /// Sweet32 exposure: a 64-bit block cipher in a block mode.
    pub fn is_small_block(self) -> bool {
        self.prop(|i| i.enc.block_bits() == Some(64) && i.enc.mode() == EncMode::Cbc)
    }

    /// A TLS 1.3 suite (0x13xx).
    pub fn is_tls13(self) -> bool {
        self.prop(|i| i.kx == Kx::Tls13)
    }

    /// AEAD algorithm bucket, if AEAD.
    pub fn aead_alg(self) -> Option<AeadAlg> {
        match self.info() {
            Some(i) if i.kx != Kx::Scsv => i.enc.aead_alg(),
            _ => None,
        }
    }

    /// Key-exchange bucket, if registered.
    pub fn kx(self) -> Option<Kx> {
        self.info().map(|i| i.kx)
    }

    /// Every class membership in a single registry lookup — exactly
    /// equivalent to calling each `is_*` predicate (and [`aead_alg`])
    /// separately, but without repeating the binary search per
    /// predicate. Unregistered, GREASE, and SCSV values belong to no
    /// class. The per-connection aggregation fold classifies every
    /// offered suite along all axes at once, which makes the repeated
    /// lookups the hot path this amortises.
    ///
    /// [`aead_alg`]: CipherSuite::aead_alg
    pub fn classes(self) -> SuiteClasses {
        let Some(i) = self.info() else {
            return SuiteClasses::default();
        };
        if i.kx == Kx::Scsv {
            return SuiteClasses::default();
        }
        let mode = i.enc.mode();
        SuiteClasses {
            rc4: matches!(i.enc, Enc::Rc4_40 | Enc::Rc4_56 | Enc::Rc4_128),
            cbc: mode == EncMode::Cbc,
            aead: mode == EncMode::Aead,
            des: matches!(i.enc, Enc::Des40Cbc | Enc::DesCbc),
            tdes: i.enc == Enc::TripleDesCbc,
            export: i.export,
            anon: i.auth == Auth::Anon,
            null_enc: i.enc == Enc::Null,
            forward_secret: matches!(
                i.kx,
                Kx::Dhe
                    | Kx::Ecdhe
                    | Kx::DhAnon
                    | Kx::EcdhAnon
                    | Kx::DhePsk
                    | Kx::EcdhePsk
                    | Kx::Srp
                    | Kx::Tls13
            ),
            aead_alg: i.enc.aead_alg(),
        }
    }
}

/// Class memberships of one suite, from [`CipherSuite::classes`].
/// Field values match the corresponding `is_*` predicates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuiteClasses {
    /// [`CipherSuite::is_rc4`].
    pub rc4: bool,
    /// [`CipherSuite::is_cbc`].
    pub cbc: bool,
    /// [`CipherSuite::is_aead`].
    pub aead: bool,
    /// [`CipherSuite::is_des`].
    pub des: bool,
    /// [`CipherSuite::is_3des`].
    pub tdes: bool,
    /// [`CipherSuite::is_export`].
    pub export: bool,
    /// [`CipherSuite::is_anon`].
    pub anon: bool,
    /// [`CipherSuite::is_null_encryption`].
    pub null_enc: bool,
    /// [`CipherSuite::is_forward_secret`].
    pub forward_secret: bool,
    /// [`CipherSuite::aead_alg`].
    pub aead_alg: Option<AeadAlg>,
}

impl CipherSuite {
    fn fmt_name(self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => write!(f, "TLS_{n}"),
            None => write!(f, "cipher({:#06x})", self.0),
        }
    }
}

impl fmt::Debug for CipherSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_name(f)
    }
}

impl fmt::Display for CipherSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_name(f)
    }
}
