//! TLS extensions: the IANA type registry and the parsed bodies the
//! measurement pipeline needs.
//!
//! Extensions carry three of the paper's analysis axes: the
//! `supported_groups` and `ec_point_formats` lists are fingerprint
//! features (§4), `heartbeat` is the §5.4 Heartbleed surface, and
//! `supported_versions` is how TLS 1.3 clients actually advertise 1.3
//! (§6.4) — the legacy version field stays at 1.2.

use crate::codec::{Reader, Writer};
use crate::error::{WireError, WireResult};
use crate::groups::NamedGroup;
use crate::version::ProtocolVersion;

/// Well-known extension type code points (IANA, 2018 snapshot, plus the
/// historical nonstandard values seen in the wild).
pub mod ext_type {
    /// server_name (SNI).
    pub const SERVER_NAME: u16 = 0;
    /// max_fragment_length.
    pub const MAX_FRAGMENT_LENGTH: u16 = 1;
    /// client_certificate_url.
    pub const CLIENT_CERTIFICATE_URL: u16 = 2;
    /// trusted_ca_keys.
    pub const TRUSTED_CA_KEYS: u16 = 3;
    /// truncated_hmac.
    pub const TRUNCATED_HMAC: u16 = 4;
    /// status_request (OCSP stapling).
    pub const STATUS_REQUEST: u16 = 5;
    /// user_mapping.
    pub const USER_MAPPING: u16 = 6;
    /// client_authz.
    pub const CLIENT_AUTHZ: u16 = 7;
    /// server_authz.
    pub const SERVER_AUTHZ: u16 = 8;
    /// cert_type.
    pub const CERT_TYPE: u16 = 9;
    /// supported_groups (née elliptic_curves).
    pub const SUPPORTED_GROUPS: u16 = 10;
    /// ec_point_formats.
    pub const EC_POINT_FORMATS: u16 = 11;
    /// srp.
    pub const SRP: u16 = 12;
    /// signature_algorithms.
    pub const SIGNATURE_ALGORITHMS: u16 = 13;
    /// use_srtp.
    pub const USE_SRTP: u16 = 14;
    /// heartbeat (RFC 6520) — the Heartbleed surface.
    pub const HEARTBEAT: u16 = 15;
    /// application_layer_protocol_negotiation.
    pub const ALPN: u16 = 16;
    /// status_request_v2.
    pub const STATUS_REQUEST_V2: u16 = 17;
    /// signed_certificate_timestamp.
    pub const SCT: u16 = 18;
    /// client_certificate_type.
    pub const CLIENT_CERTIFICATE_TYPE: u16 = 19;
    /// server_certificate_type.
    pub const SERVER_CERTIFICATE_TYPE: u16 = 20;
    /// padding.
    pub const PADDING: u16 = 21;
    /// encrypt_then_mac (RFC 7366) — the Lucky 13 response.
    pub const ENCRYPT_THEN_MAC: u16 = 22;
    /// extended_master_secret.
    pub const EXTENDED_MASTER_SECRET: u16 = 23;
    /// token_binding.
    pub const TOKEN_BINDING: u16 = 24;
    /// cached_info.
    pub const CACHED_INFO: u16 = 25;
    /// session_ticket.
    pub const SESSION_TICKET: u16 = 35;
    /// key_share as used by TLS 1.3 drafts up to -22.
    pub const KEY_SHARE_DRAFT: u16 = 40;
    /// pre_shared_key.
    pub const PRE_SHARED_KEY: u16 = 41;
    /// early_data.
    pub const EARLY_DATA: u16 = 42;
    /// supported_versions — TLS 1.3 version negotiation.
    pub const SUPPORTED_VERSIONS: u16 = 43;
    /// cookie.
    pub const COOKIE: u16 = 44;
    /// psk_key_exchange_modes.
    pub const PSK_KEY_EXCHANGE_MODES: u16 = 45;
    /// certificate_authorities.
    pub const CERTIFICATE_AUTHORITIES: u16 = 47;
    /// oid_filters.
    pub const OID_FILTERS: u16 = 48;
    /// post_handshake_auth.
    pub const POST_HANDSHAKE_AUTH: u16 = 49;
    /// signature_algorithms_cert.
    pub const SIGNATURE_ALGORITHMS_CERT: u16 = 50;
    /// key_share (RFC 8446 final).
    pub const KEY_SHARE: u16 = 51;
    /// next_protocol_negotiation (NPN; historical Chrome/Firefox).
    pub const NPN: u16 = 13172;
    /// channel_id (historical Google).
    pub const CHANNEL_ID: u16 = 30032;
    /// renegotiation_info (RFC 5746) — the RIE extension.
    pub const RENEGOTIATION_INFO: u16 = 65281;

    /// Human-readable name for a type code, if known.
    pub fn name(t: u16) -> Option<&'static str> {
        Some(match t {
            SERVER_NAME => "server_name",
            MAX_FRAGMENT_LENGTH => "max_fragment_length",
            CLIENT_CERTIFICATE_URL => "client_certificate_url",
            TRUSTED_CA_KEYS => "trusted_ca_keys",
            TRUNCATED_HMAC => "truncated_hmac",
            STATUS_REQUEST => "status_request",
            USER_MAPPING => "user_mapping",
            CLIENT_AUTHZ => "client_authz",
            SERVER_AUTHZ => "server_authz",
            CERT_TYPE => "cert_type",
            SUPPORTED_GROUPS => "supported_groups",
            EC_POINT_FORMATS => "ec_point_formats",
            SRP => "srp",
            SIGNATURE_ALGORITHMS => "signature_algorithms",
            USE_SRTP => "use_srtp",
            HEARTBEAT => "heartbeat",
            ALPN => "application_layer_protocol_negotiation",
            STATUS_REQUEST_V2 => "status_request_v2",
            SCT => "signed_certificate_timestamp",
            CLIENT_CERTIFICATE_TYPE => "client_certificate_type",
            SERVER_CERTIFICATE_TYPE => "server_certificate_type",
            PADDING => "padding",
            ENCRYPT_THEN_MAC => "encrypt_then_mac",
            EXTENDED_MASTER_SECRET => "extended_master_secret",
            TOKEN_BINDING => "token_binding",
            CACHED_INFO => "cached_info",
            SESSION_TICKET => "session_ticket",
            KEY_SHARE_DRAFT => "key_share(draft)",
            PRE_SHARED_KEY => "pre_shared_key",
            EARLY_DATA => "early_data",
            SUPPORTED_VERSIONS => "supported_versions",
            COOKIE => "cookie",
            PSK_KEY_EXCHANGE_MODES => "psk_key_exchange_modes",
            CERTIFICATE_AUTHORITIES => "certificate_authorities",
            OID_FILTERS => "oid_filters",
            POST_HANDSHAKE_AUTH => "post_handshake_auth",
            SIGNATURE_ALGORITHMS_CERT => "signature_algorithms_cert",
            KEY_SHARE => "key_share",
            NPN => "next_protocol_negotiation",
            CHANNEL_ID => "channel_id",
            RENEGOTIATION_INFO => "renegotiation_info",
            _ => return None,
        })
    }
}

/// A raw extension: type code plus opaque body.
///
/// The hello parsers keep extensions raw; typed accessors below decode
/// the bodies the analysis actually uses. This mirrors how a passive
/// monitor must behave — it cannot assume it understands every
/// extension on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// Extension type code point.
    pub typ: u16,
    /// Undecoded extension body.
    pub body: Vec<u8>,
}

impl Extension {
    /// Construct an extension from a type and raw body.
    pub fn new(typ: u16, body: Vec<u8>) -> Self {
        Extension { typ, body }
    }

    /// An empty-bodied extension (most boolean-flag extensions).
    pub fn empty(typ: u16) -> Self {
        Extension {
            typ,
            body: Vec::new(),
        }
    }

    /// `supported_groups`: body is a u16-length-prefixed list of groups.
    pub fn supported_groups(groups: &[NamedGroup]) -> Self {
        let mut w = Writer::new();
        ext_body::supported_groups(&mut w, groups.iter().map(|g| g.0));
        Extension::new(ext_type::SUPPORTED_GROUPS, w.into_bytes())
    }

    /// `ec_point_formats`: body is a u8-length-prefixed list of formats.
    pub fn ec_point_formats(formats: &[u8]) -> Self {
        let mut w = Writer::new();
        ext_body::ec_point_formats(&mut w, formats);
        Extension::new(ext_type::EC_POINT_FORMATS, w.into_bytes())
    }

    /// `supported_versions` (ClientHello form): u8-length-prefixed list.
    pub fn supported_versions(versions: &[ProtocolVersion]) -> Self {
        let mut w = Writer::new();
        ext_body::supported_versions(&mut w, versions.iter().map(|v| v.to_wire()));
        Extension::new(ext_type::SUPPORTED_VERSIONS, w.into_bytes())
    }

    /// `supported_versions` (ServerHello form): single version.
    pub fn selected_version(version: ProtocolVersion) -> Self {
        let mut w = Writer::new();
        ext_body::selected_version(&mut w, version);
        Extension::new(ext_type::SUPPORTED_VERSIONS, w.into_bytes())
    }

    /// `server_name` with a single DNS hostname.
    pub fn server_name(host: &str) -> Self {
        let mut w = Writer::new();
        ext_body::server_name(&mut w, host);
        Extension::new(ext_type::SERVER_NAME, w.into_bytes())
    }

    /// `heartbeat` with the given mode (1 = peer_allowed_to_send).
    pub fn heartbeat(mode: u8) -> Self {
        Extension::new(ext_type::HEARTBEAT, vec![mode])
    }

    /// `renegotiation_info` with empty verify data (initial handshake).
    pub fn renegotiation_info() -> Self {
        Extension::new(ext_type::RENEGOTIATION_INFO, vec![0])
    }

    /// ServerHello `key_share`: the selected group plus an opaque key.
    pub fn key_share_server(group: crate::groups::NamedGroup) -> Self {
        let mut w = Writer::new();
        ext_body::key_share_server(&mut w, group);
        Extension::new(ext_type::KEY_SHARE, w.into_bytes())
    }

    /// `signature_algorithms` from (hash, sig) wire pairs.
    pub fn signature_algorithms(algs: &[u16]) -> Self {
        let mut w = Writer::new();
        ext_body::signature_algorithms(&mut w, algs);
        Extension::new(ext_type::SIGNATURE_ALGORITHMS, w.into_bytes())
    }

    /// `application_layer_protocol_negotiation` from protocol names.
    pub fn alpn(protocols: &[&str]) -> Self {
        let mut w = Writer::new();
        ext_body::alpn(&mut w, protocols);
        Extension::new(ext_type::ALPN, w.into_bytes())
    }

    // ---- typed decoders --------------------------------------------

    /// Decode a `supported_groups` body.
    pub fn parse_supported_groups(&self) -> WireResult<Vec<NamedGroup>> {
        debug_assert_eq!(self.typ, ext_type::SUPPORTED_GROUPS);
        let mut r = Reader::new(&self.body);
        let groups = r.vec16()?.u16_list()?;
        r.expect_empty()?;
        Ok(groups.into_iter().map(NamedGroup).collect())
    }

    /// Decode an `ec_point_formats` body.
    pub fn parse_ec_point_formats(&self) -> WireResult<Vec<u8>> {
        debug_assert_eq!(self.typ, ext_type::EC_POINT_FORMATS);
        let mut r = Reader::new(&self.body);
        let formats = r.vec8()?.u8_list();
        r.expect_empty()?;
        Ok(formats)
    }

    /// Decode a ClientHello `supported_versions` body.
    pub fn parse_supported_versions(&self) -> WireResult<Vec<ProtocolVersion>> {
        debug_assert_eq!(self.typ, ext_type::SUPPORTED_VERSIONS);
        let mut r = Reader::new(&self.body);
        let vs = r.vec8()?.u16_list()?;
        r.expect_empty()?;
        Ok(vs.into_iter().map(ProtocolVersion::from_wire).collect())
    }

    /// Decode a ServerHello `supported_versions` body (single version).
    pub fn parse_selected_version(&self) -> WireResult<ProtocolVersion> {
        debug_assert_eq!(self.typ, ext_type::SUPPORTED_VERSIONS);
        let mut r = Reader::new(&self.body);
        let v = r.u16()?;
        r.expect_empty()?;
        Ok(ProtocolVersion::from_wire(v))
    }

    /// Decode a `server_name` body; returns the first DNS hostname.
    pub fn parse_server_name(&self) -> WireResult<String> {
        debug_assert_eq!(self.typ, ext_type::SERVER_NAME);
        let mut r = Reader::new(&self.body);
        let mut list = r.vec16()?;
        while !list.is_empty() {
            let name_type = list.u8()?;
            let mut name = list.vec16()?;
            if name_type == 0 {
                return String::from_utf8(name.rest().to_vec())
                    .map_err(|_| WireError::InvalidField("server_name not UTF-8"));
            }
        }
        Err(WireError::InvalidField("no host_name entry in server_name"))
    }

    /// Decode a ServerHello `key_share` body; returns the group.
    pub fn parse_key_share_server(&self) -> WireResult<NamedGroup> {
        debug_assert!(self.typ == ext_type::KEY_SHARE || self.typ == ext_type::KEY_SHARE_DRAFT);
        let mut r = Reader::new(&self.body);
        let g = r.u16()?;
        let mut key = r.vec16()?;
        let _ = key.rest();
        r.expect_empty()?;
        Ok(NamedGroup(g))
    }

    /// Decode a `heartbeat` body; returns the mode byte.
    pub fn parse_heartbeat(&self) -> WireResult<u8> {
        debug_assert_eq!(self.typ, ext_type::HEARTBEAT);
        let mut r = Reader::new(&self.body);
        let m = r.u8()?;
        r.expect_empty()?;
        Ok(m)
    }
}

/// Extension-body serialisers, shared between the [`Extension`]
/// builders and allocation-free hello writers (which emit bodies
/// straight into a reusable buffer instead of materialising
/// `Extension` structs). Each function appends exactly the bytes the
/// corresponding builder would put in `Extension::body`.
pub mod ext_body {
    use super::*;

    /// `supported_groups` body from wire group values.
    pub fn supported_groups(w: &mut Writer, groups: impl IntoIterator<Item = u16>) {
        w.vec16(|w| {
            for g in groups {
                w.u16(g);
            }
        });
    }

    /// `ec_point_formats` body.
    pub fn ec_point_formats(w: &mut Writer, formats: &[u8]) {
        w.vec8(|w| {
            w.bytes(formats);
        });
    }

    /// ClientHello `supported_versions` body from wire version values.
    pub fn supported_versions(w: &mut Writer, versions: impl IntoIterator<Item = u16>) {
        w.vec8(|w| {
            for v in versions {
                w.u16(v);
            }
        });
    }

    /// ServerHello `supported_versions` body (single version).
    pub fn selected_version(w: &mut Writer, version: ProtocolVersion) {
        w.u16(version.to_wire());
    }

    /// `server_name` body with a single DNS hostname.
    pub fn server_name(w: &mut Writer, host: &str) {
        w.vec16(|w| {
            w.u8(0); // name_type = host_name
            w.vec16(|w| {
                w.bytes(host.as_bytes());
            });
        });
    }

    /// `heartbeat` body.
    pub fn heartbeat(w: &mut Writer, mode: u8) {
        w.u8(mode);
    }

    /// `renegotiation_info` body with empty verify data.
    pub fn renegotiation_info(w: &mut Writer) {
        w.u8(0);
    }

    /// ServerHello `key_share` body: selected group plus opaque key.
    pub fn key_share_server(w: &mut Writer, group: NamedGroup) {
        w.u16(group.0);
        w.vec16(|w| {
            w.bytes(&[0x04; 32]);
        });
    }

    /// `signature_algorithms` body from (hash, sig) wire pairs.
    pub fn signature_algorithms(w: &mut Writer, algs: &[u16]) {
        w.vec16(|w| {
            w.u16_list(algs);
        });
    }

    /// ALPN body from protocol names.
    pub fn alpn(w: &mut Writer, protocols: &[&str]) {
        w.vec16(|w| {
            for p in protocols {
                w.vec8(|w| {
                    w.bytes(p.as_bytes());
                });
            }
        });
    }
}

/// Write one extension (type + u16-length-prefixed body) into `w`,
/// with the body produced by `body` — typically one of the
/// [`ext_body`] serialisers.
pub fn write_extension(w: &mut Writer, typ: u16, body: impl FnOnce(&mut Writer)) {
    w.u16(typ);
    w.vec16(body);
}

/// Serialise an extension list (with outer u16 length) into `w`.
pub fn write_extensions(w: &mut Writer, exts: &[Extension]) {
    w.vec16(|w| {
        for e in exts {
            w.u16(e.typ);
            w.vec16(|w| {
                w.bytes(&e.body);
            });
        }
    });
}

/// Parse an extension list (with outer u16 length) from `r`.
pub fn read_extensions(r: &mut Reader<'_>) -> WireResult<Vec<Extension>> {
    let mut list = r.vec16()?;
    let mut out = Vec::new();
    while !list.is_empty() {
        let typ = list.u16()?;
        let mut body = list.vec16()?;
        out.push(Extension::new(typ, body.rest().to_vec()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_roundtrip() {
        let groups = [
            NamedGroup::X25519,
            NamedGroup::SECP256R1,
            NamedGroup::SECP384R1,
        ];
        let e = Extension::supported_groups(&groups);
        assert_eq!(e.parse_supported_groups().unwrap(), groups.to_vec());
    }

    #[test]
    fn point_formats_roundtrip() {
        let e = Extension::ec_point_formats(&[0, 1, 2]);
        assert_eq!(e.parse_ec_point_formats().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn supported_versions_roundtrip() {
        let vs = [
            ProtocolVersion::Tls13Experiment(2),
            ProtocolVersion::Tls13Draft(18),
            ProtocolVersion::Tls12,
        ];
        let e = Extension::supported_versions(&vs);
        assert_eq!(e.parse_supported_versions().unwrap(), vs.to_vec());
    }

    #[test]
    fn selected_version_roundtrip() {
        let e = Extension::selected_version(ProtocolVersion::Tls13Draft(28));
        assert_eq!(
            e.parse_selected_version().unwrap(),
            ProtocolVersion::Tls13Draft(28)
        );
    }

    #[test]
    fn server_name_roundtrip() {
        let e = Extension::server_name("notary.icsi.berkeley.edu");
        assert_eq!(e.parse_server_name().unwrap(), "notary.icsi.berkeley.edu");
    }

    #[test]
    fn heartbeat_roundtrip() {
        let e = Extension::heartbeat(1);
        assert_eq!(e.parse_heartbeat().unwrap(), 1);
    }

    #[test]
    fn extension_list_roundtrip() {
        let exts = vec![
            Extension::server_name("example.org"),
            Extension::supported_groups(&[NamedGroup::X25519]),
            Extension::empty(ext_type::EXTENDED_MASTER_SECRET),
            Extension::renegotiation_info(),
        ];
        let mut w = Writer::new();
        write_extensions(&mut w, &exts);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let parsed = read_extensions(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(parsed, exts);
    }

    #[test]
    fn truncated_extension_list_fails() {
        let exts = vec![Extension::server_name("example.org")];
        let mut w = Writer::new();
        write_extensions(&mut w, &exts);
        let bytes = w.into_bytes();
        for cut in 1..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(read_extensions(&mut r).is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn registry_names() {
        assert_eq!(ext_type::name(0), Some("server_name"));
        assert_eq!(ext_type::name(15), Some("heartbeat"));
        assert_eq!(ext_type::name(43), Some("supported_versions"));
        assert_eq!(ext_type::name(65281), Some("renegotiation_info"));
        assert_eq!(ext_type::name(0x9999), None);
    }

    #[test]
    fn malformed_bodies_rejected() {
        // supported_groups with odd-length list body.
        let e = Extension::new(
            ext_type::SUPPORTED_GROUPS,
            vec![0x00, 0x03, 0x00, 0x1d, 0x99],
        );
        assert!(e.parse_supported_groups().is_err());
        // heartbeat with trailing garbage.
        let e = Extension::new(ext_type::HEARTBEAT, vec![1, 2]);
        assert!(e.parse_heartbeat().is_err());
        // server_name with a non-DNS entry only.
        let mut w = Writer::new();
        w.vec16(|w| {
            w.u8(7);
            w.vec16(|w| {
                w.bytes(b"x");
            });
        });
        let e = Extension::new(ext_type::SERVER_NAME, w.into_bytes());
        assert!(e.parse_server_name().is_err());
    }
}
