//! TLS alert protocol: levels, descriptions, and parsing.
//!
//! The monitor sees failed handshakes as alert records; classifying
//! *why* servers reject (handshake_failure vs protocol_version vs
//! insufficient_security) is part of understanding downgrade behaviour.

use crate::codec::Reader;
use crate::error::{WireError, WireResult};

/// Alert severity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertLevel {
    /// warning(1).
    Warning,
    /// fatal(2).
    Fatal,
    /// Anything else on the wire.
    Unknown(u8),
}

impl AlertLevel {
    /// Decode a wire value.
    pub fn from_wire(v: u8) -> Self {
        match v {
            1 => AlertLevel::Warning,
            2 => AlertLevel::Fatal,
            other => AlertLevel::Unknown(other),
        }
    }

    /// Wire value.
    pub fn to_wire(self) -> u8 {
        match self {
            AlertLevel::Warning => 1,
            AlertLevel::Fatal => 2,
            AlertLevel::Unknown(v) => v,
        }
    }
}

/// A parsed alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// Description code.
    pub description: u8,
}

/// Well-known alert description codes (RFC 5246 §7.2).
pub mod alert_desc {
    /// close_notify.
    pub const CLOSE_NOTIFY: u8 = 0;
    /// unexpected_message.
    pub const UNEXPECTED_MESSAGE: u8 = 10;
    /// bad_record_mac.
    pub const BAD_RECORD_MAC: u8 = 20;
    /// record_overflow.
    pub const RECORD_OVERFLOW: u8 = 22;
    /// decompression_failure.
    pub const DECOMPRESSION_FAILURE: u8 = 30;
    /// handshake_failure.
    pub const HANDSHAKE_FAILURE: u8 = 40;
    /// bad_certificate.
    pub const BAD_CERTIFICATE: u8 = 42;
    /// unsupported_certificate.
    pub const UNSUPPORTED_CERTIFICATE: u8 = 43;
    /// certificate_expired.
    pub const CERTIFICATE_EXPIRED: u8 = 45;
    /// illegal_parameter.
    pub const ILLEGAL_PARAMETER: u8 = 47;
    /// unknown_ca.
    pub const UNKNOWN_CA: u8 = 48;
    /// decode_error.
    pub const DECODE_ERROR: u8 = 50;
    /// decrypt_error.
    pub const DECRYPT_ERROR: u8 = 51;
    /// protocol_version.
    pub const PROTOCOL_VERSION: u8 = 70;
    /// insufficient_security.
    pub const INSUFFICIENT_SECURITY: u8 = 71;
    /// internal_error.
    pub const INTERNAL_ERROR: u8 = 80;
    /// inappropriate_fallback (RFC 7507 — the POODLE-era SCSV response).
    pub const INAPPROPRIATE_FALLBACK: u8 = 86;
    /// user_canceled.
    pub const USER_CANCELED: u8 = 90;
    /// no_renegotiation.
    pub const NO_RENEGOTIATION: u8 = 100;
    /// unsupported_extension.
    pub const UNSUPPORTED_EXTENSION: u8 = 110;

    /// Human-readable name for a description code, if registered.
    pub fn name(d: u8) -> Option<&'static str> {
        Some(match d {
            CLOSE_NOTIFY => "close_notify",
            UNEXPECTED_MESSAGE => "unexpected_message",
            BAD_RECORD_MAC => "bad_record_mac",
            RECORD_OVERFLOW => "record_overflow",
            DECOMPRESSION_FAILURE => "decompression_failure",
            HANDSHAKE_FAILURE => "handshake_failure",
            BAD_CERTIFICATE => "bad_certificate",
            UNSUPPORTED_CERTIFICATE => "unsupported_certificate",
            CERTIFICATE_EXPIRED => "certificate_expired",
            ILLEGAL_PARAMETER => "illegal_parameter",
            UNKNOWN_CA => "unknown_ca",
            DECODE_ERROR => "decode_error",
            DECRYPT_ERROR => "decrypt_error",
            PROTOCOL_VERSION => "protocol_version",
            INSUFFICIENT_SECURITY => "insufficient_security",
            INTERNAL_ERROR => "internal_error",
            INAPPROPRIATE_FALLBACK => "inappropriate_fallback",
            USER_CANCELED => "user_canceled",
            NO_RENEGOTIATION => "no_renegotiation",
            UNSUPPORTED_EXTENSION => "unsupported_extension",
            _ => return None,
        })
    }
}

impl Alert {
    /// A fatal handshake_failure — what servers send when no common
    /// cipher exists.
    pub fn handshake_failure() -> Self {
        Alert {
            level: AlertLevel::Fatal,
            description: alert_desc::HANDSHAKE_FAILURE,
        }
    }

    /// A fatal protocol_version alert — version intersection failure.
    pub fn protocol_version() -> Self {
        Alert {
            level: AlertLevel::Fatal,
            description: alert_desc::PROTOCOL_VERSION,
        }
    }

    /// Serialise to the 2-byte alert payload.
    pub fn to_bytes(self) -> Vec<u8> {
        vec![self.level.to_wire(), self.description]
    }

    /// Parse an alert payload.
    pub fn parse(payload: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(payload);
        let level = AlertLevel::from_wire(r.u8()?);
        let description = r.u8()?;
        r.expect_empty()
            .map_err(|_| WireError::TrailingBytes(r.remaining()))?;
        Ok(Alert { level, description })
    }

    /// Human-readable description name.
    pub fn description_name(self) -> Option<&'static str> {
        alert_desc::name(self.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for a in [
            Alert::handshake_failure(),
            Alert::protocol_version(),
            Alert {
                level: AlertLevel::Warning,
                description: alert_desc::CLOSE_NOTIFY,
            },
        ] {
            assert_eq!(Alert::parse(&a.to_bytes()).unwrap(), a);
        }
    }

    #[test]
    fn known_codes() {
        assert_eq!(Alert::handshake_failure().to_bytes(), vec![2, 40]);
        assert_eq!(alert_desc::name(40), Some("handshake_failure"));
        assert_eq!(alert_desc::name(70), Some("protocol_version"));
        assert_eq!(alert_desc::name(86), Some("inappropriate_fallback"));
        assert_eq!(alert_desc::name(200), None);
    }

    #[test]
    fn malformed_rejected() {
        assert!(Alert::parse(&[]).is_err());
        assert!(Alert::parse(&[2]).is_err());
        assert!(Alert::parse(&[2, 40, 0]).is_err());
    }

    #[test]
    fn unknown_level_preserved() {
        let a = Alert::parse(&[9, 40]).unwrap();
        assert_eq!(a.level, AlertLevel::Unknown(9));
        assert_eq!(a.level.to_wire(), 9);
    }
}
