//! Application, tool, middlebox, and misbehaving-client configurations.
//!
//! These populate the smaller Table 2 categories and, crucially, supply
//! the paper's anomalous traffic:
//!
//! * **GRID data movers** (§6.1): negotiate NULL ciphers on purpose —
//!   TLS for mutual authentication only. 99.99 % of NULL-negotiated
//!   connections in the Notary are GRID.
//! * **Nagios monitoring** (§6.2, §5.5, §6.1): anonymous DH with its own
//!   post-handshake authentication; also the sink of the residual SSL 2
//!   and `NULL_WITH_NULL_NULL` connections.
//! * **NULL/anon-offering apps** (§6.1–6.2): Craftar, Lookout Personal,
//!   Kaspersky — products that (probably unwittingly) offer NULL or
//!   anonymous suites alongside real ones.
//! * **Security scanners** (Shodan): offer everything by design.
//! * **Malware** using stock-looking but subtly-off stacks.

use tlscope_chron::Date;
use tlscope_fingerprint::Category;
use tlscope_wire::exts::ext_type as xt;
use tlscope_wire::{NamedGroup, ProtocolVersion};

use crate::family::{Era, Family};
use crate::pools::{
    aead, mix, mix_no_ec, with_extras, Rc4Placement, ANON_POOL, EXPORT_POOL, NULL_POOL,
};
use crate::spec::TlsConfig;

fn cfg(
    version: ProtocolVersion,
    ciphers: Vec<tlscope_wire::CipherSuite>,
    extensions: Vec<u16>,
    curves: Vec<NamedGroup>,
) -> TlsConfig {
    let point_formats = if curves.is_empty() { vec![] } else { vec![0] };
    TlsConfig {
        legacy_version: version,
        supported_versions: vec![],
        min_version: ProtocolVersion::Ssl3,
        ciphers,
        extensions,
        curves,
        point_formats,
        compression: vec![0],
        grease: false,
        heartbeat_mode: 1,
    }
}

const BASIC_EC: [NamedGroup; 2] = [NamedGroup::SECP256R1, NamedGroup::SECP384R1];

fn one_era(
    name: &'static str,
    category: Category,
    versions: &'static str,
    from: Date,
    tls: TlsConfig,
) -> Family {
    Family::new(
        name,
        category,
        vec![Era {
            versions,
            from,
            tls,
        }],
    )
}

/// Globus GridFTP data movers: NULL ciphers first, by design.
pub fn grid_ftp() -> Family {
    one_era(
        "Globus GridFTP",
        Category::OsTool,
        "5.x",
        Date::ymd(2011, 1, 1),
        cfg(
            ProtocolVersion::Tls10,
            with_extras(
                NULL_POOL[..3]
                    .iter()
                    .map(|&i| tlscope_wire::CipherSuite(i))
                    .collect(),
                &[0x002f, 0x0035, 0x000a],
            ),
            vec![xt::RENEGOTIATION_INFO],
            vec![],
        ),
    )
}

/// Nagios NRPE-style checks: anonymous DH only, plus the fully-null
/// suite some deployments emit.
pub fn nagios() -> Family {
    one_era(
        "Nagios NRPE",
        Category::OsTool,
        "2.x-3.x",
        Date::ymd(2010, 1, 1),
        cfg(
            ProtocolVersion::Tls10,
            with_extras(
                ANON_POOL
                    .iter()
                    .map(|&i| tlscope_wire::CipherSuite(i))
                    .collect(),
                &[0x0000],
            ),
            vec![],
            vec![],
        ),
    )
}

/// An SSLv2-era monitoring probe that still speaks the 1995 protocol at
/// one university's servers (§5.1).
pub fn legacy_sslv2_probe() -> Family {
    one_era(
        "Legacy Nagios probe (SSLv2)",
        Category::OsTool,
        "1.x",
        Date::ymd(2005, 1, 1),
        cfg(
            ProtocolVersion::Ssl2,
            vec![
                tlscope_wire::CipherSuite(0x0004),
                tlscope_wire::CipherSuite(0x000a),
            ],
            vec![],
            vec![],
        ),
    )
}

/// Lookout Personal: a security app that offers NULL and anonymous
/// suites after its real list (§6.1, §6.2).
pub fn lookout() -> Family {
    one_era(
        "Lookout Personal",
        Category::MobileApp,
        "9-10",
        Date::ymd(2013, 5, 1),
        cfg(
            ProtocolVersion::Tls10,
            with_extras(
                mix(&[], 10, 2, 2, 1, Rc4Placement::Mid),
                &[NULL_POOL[0], NULL_POOL[1], ANON_POOL[0], ANON_POOL[2]],
            ),
            vec![
                xt::SERVER_NAME,
                xt::SESSION_TICKET,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
            ],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Craftar image recognition SDK: offers NULL suites (§6.1).
pub fn craftar() -> Family {
    one_era(
        "Craftar Image Recognition",
        Category::MobileApp,
        "1.x",
        Date::ymd(2014, 3, 1),
        cfg(
            ProtocolVersion::Tls10,
            with_extras(mix(&[], 8, 2, 1, 0, Rc4Placement::Mid), &NULL_POOL[..2]),
            vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Kaspersky's network stack: anonymous suites in the offer (§6.2).
pub fn kaspersky() -> Family {
    one_era(
        "Kaspersky",
        Category::Antivirus,
        "2015-2017",
        Date::ymd(2014, 8, 1),
        cfg(
            ProtocolVersion::Tls12,
            with_extras(
                mix(aead::GEN2, 10, 2, 1, 0, Rc4Placement::Mid),
                &ANON_POOL[..3],
            ),
            vec![
                xt::SERVER_NAME,
                xt::RENEGOTIATION_INFO,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::SIGNATURE_ALGORITHMS,
            ],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Avast's TLS-inspecting middlebox client.
pub fn avast() -> Family {
    one_era(
        "Avast",
        Category::Antivirus,
        "10-17",
        Date::ymd(2014, 10, 1),
        cfg(
            ProtocolVersion::Tls12,
            mix(aead::GEN2, 14, 4, 2, 0, Rc4Placement::Mid),
            vec![
                xt::SERVER_NAME,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::SESSION_TICKET,
                xt::SIGNATURE_ALGORITHMS,
            ],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Blue Coat proxy ("ProxySG"): the middlebox the paper quotes breaking
/// TLS 1.3 connections.
pub fn bluecoat() -> Family {
    one_era(
        "Bluecoat Proxy",
        Category::Antivirus,
        "6.x",
        Date::ymd(2013, 1, 1),
        cfg(
            ProtocolVersion::Tls11,
            mix(&[], 12, 3, 2, 1, Rc4Placement::Mid),
            vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Shodan's Internet-wide scanner: offers essentially everything.
pub fn shodan() -> Family {
    one_era(
        "Shodan scanner",
        Category::OsTool,
        "-",
        Date::ymd(2013, 6, 1),
        cfg(
            ProtocolVersion::Tls12,
            with_extras(
                mix(aead::GEN2, 20, 6, 4, 3, Rc4Placement::Mid),
                &[
                    EXPORT_POOL[0],
                    EXPORT_POOL[1],
                    EXPORT_POOL[2],
                    NULL_POOL[0],
                    NULL_POOL[1],
                    ANON_POOL[0],
                    ANON_POOL[1],
                    ANON_POOL[2],
                    ANON_POOL[3],
                ],
            ),
            vec![
                xt::SERVER_NAME,
                xt::HEARTBEAT,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::SIGNATURE_ALGORITHMS,
                xt::SESSION_TICKET,
            ],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Dropbox desktop client (OpenSSL-linked, custom extension order).
pub fn dropbox() -> Family {
    Family::new(
        "Dropbox",
        Category::CloudStorage,
        vec![
            Era {
                versions: "2.x",
                from: Date::ymd(2013, 1, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(
                        &[0xc02f, 0xc02b, 0x009e, 0x009c],
                        14,
                        2,
                        2,
                        0,
                        Rc4Placement::Mid,
                    ),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                        xt::HEARTBEAT,
                        xt::SIGNATURE_ALGORITHMS,
                    ],
                    BASIC_EC.to_vec(),
                ),
            },
            Era {
                versions: "3.x+",
                from: Date::ymd(2015, 6, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 10, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    BASIC_EC.to_vec(),
                ),
            },
        ],
    )
}

/// Thunderbird (NSS, trailing Firefox by a release or two).
pub fn thunderbird() -> Family {
    Family::new(
        "Thunderbird",
        Category::Email,
        vec![
            Era {
                versions: "17-31",
                from: Date::ymd(2012, 11, 20),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 18, 6, 7, 2, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                    ],
                    BASIC_EC.to_vec(),
                ),
            },
            Era {
                versions: "38-52",
                from: Date::ymd(2015, 6, 2),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 8, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::ALPN,
                    ],
                    BASIC_EC.to_vec(),
                ),
            },
        ],
    )
}

/// Apple Mail (SecureTransport with its own extension subset).
pub fn apple_mail() -> Family {
    one_era(
        "Apple Mail",
        Category::Email,
        "7-11",
        Date::ymd(2013, 10, 22),
        cfg(
            ProtocolVersion::Tls12,
            mix(&[], 18, 4, 3, 0, Rc4Placement::Mid),
            vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
            vec![
                NamedGroup::SECP256R1,
                NamedGroup::SECP384R1,
                NamedGroup::SECP521R1,
            ],
        ),
    )
}

/// Apple Spotlight suggestions service.
pub fn spotlight() -> Family {
    one_era(
        "Apple Spotlight",
        Category::OsTool,
        "10.10+",
        Date::ymd(2014, 10, 16),
        cfg(
            ProtocolVersion::Tls12,
            mix(aead::GEN2, 10, 4, 3, 0, Rc4Placement::Mid),
            vec![
                xt::SERVER_NAME,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::SIGNATURE_ALGORITHMS,
                xt::ALPN,
            ],
            vec![
                NamedGroup::SECP256R1,
                NamedGroup::SECP384R1,
                NamedGroup::SECP521R1,
            ],
        ),
    )
}

/// git's HTTPS transport (libcurl + OpenSSL, lagging the OpenSSL era).
pub fn git() -> Family {
    one_era(
        "git",
        Category::DevTool,
        "1.9-2.x",
        Date::ymd(2014, 2, 14),
        cfg(
            ProtocolVersion::Tls12,
            mix(
                &[0xc02f, 0xc02b, 0x009e, 0x009c, 0x009d, 0x009f],
                18,
                4,
                3,
                2,
                Rc4Placement::Mid,
            ),
            vec![
                xt::SERVER_NAME,
                xt::RENEGOTIATION_INFO,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::SESSION_TICKET,
                xt::HEARTBEAT,
                xt::SIGNATURE_ALGORITHMS,
                xt::ALPN,
            ],
            vec![
                NamedGroup::SECP256R1,
                NamedGroup::SECP521R1,
                NamedGroup::SECP384R1,
            ],
        ),
    )
}

/// f.lux update checker.
pub fn flux() -> Family {
    one_era(
        "Flux",
        Category::DevTool,
        "3-4",
        Date::ymd(2013, 7, 1),
        cfg(
            ProtocolVersion::Tls10,
            mix(&[], 8, 2, 1, 1, Rc4Placement::Mid),
            vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Facebook's in-app stack (proxygen/fizz lineage): early ChaCha20.
pub fn facebook_app() -> Family {
    one_era(
        "Facebook app",
        Category::MobileApp,
        "2015-2018",
        Date::ymd(2015, 3, 1),
        cfg(
            ProtocolVersion::Tls12,
            mix(
                &[0xcc14, 0xcc13, 0xc02b, 0xc02f, 0x009e, 0x009c],
                6,
                0,
                0,
                0,
                Rc4Placement::Mid,
            ),
            vec![
                xt::SERVER_NAME,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::ALPN,
                xt::SIGNATURE_ALGORITHMS,
            ],
            vec![NamedGroup::X25519, NamedGroup::SECP256R1],
        ),
    )
}

/// Hola VPN's bundled stack.
pub fn hola_vpn() -> Family {
    one_era(
        "Hola VPN",
        Category::MobileApp,
        "1.x",
        Date::ymd(2014, 1, 1),
        cfg(
            ProtocolVersion::Tls10,
            mix(&[], 14, 4, 2, 1, Rc4Placement::Head),
            vec![
                xt::SERVER_NAME,
                xt::SESSION_TICKET,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
            ],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Zbot/Zeus malware family: a Schannel look-alike with a telltale
/// reordered list and no renegotiation_info.
pub fn zbot() -> Family {
    one_era(
        "Zbot",
        Category::Malware,
        "-",
        Date::ymd(2012, 6, 1),
        cfg(
            ProtocolVersion::Tls10,
            mix_no_ec(&[], 8, 2, 1, 1, Rc4Placement::Head),
            vec![xt::SERVER_NAME],
            vec![],
        ),
    )
}

/// InstallMonster/InstallMoney PUP downloader.
pub fn install_money() -> Family {
    one_era(
        "InstallMoney",
        Category::Malware,
        "-",
        Date::ymd(2014, 9, 1),
        cfg(
            ProtocolVersion::Tls10,
            with_extras(
                mix_no_ec(&[], 10, 3, 2, 1, Rc4Placement::Mid),
                &[EXPORT_POOL[0]],
            ),
            vec![xt::SERVER_NAME, xt::SESSION_TICKET],
            vec![],
        ),
    )
}

/// Splunk universal forwarder: ships logs to indexers on tcp/9997 and
/// offers static-ECDH suites, producing the paper's "ECDH nearly
/// exclusively at Splunk servers on port 9997" (§6.3.1).
pub fn splunk_forwarder() -> Family {
    one_era(
        "Splunk forwarder",
        Category::OsTool,
        "6.x",
        Date::ymd(2013, 10, 1),
        cfg(
            ProtocolVersion::Tls12,
            {
                let mut list = vec![
                    tlscope_wire::CipherSuite(0xc031), // static ECDH GCM
                    tlscope_wire::CipherSuite(0xc02e),
                ];
                list.append(&mut mix(aead::GEN2, 6, 0, 1, 0, Rc4Placement::Mid));
                list
            },
            vec![
                xt::SERVER_NAME,
                xt::SUPPORTED_GROUPS,
                xt::EC_POINT_FORMATS,
                xt::SIGNATURE_ALGORITHMS,
            ],
            BASIC_EC.to_vec(),
        ),
    )
}

/// Interwise conferencing client (§5.5): offers RC4_128 (no export) and
/// gets export-RC4 answers from its own servers.
pub fn interwise_client() -> Family {
    one_era(
        "Interwise",
        Category::OsTool,
        "8.x",
        Date::ymd(2008, 1, 1),
        cfg(
            ProtocolVersion::Tls10,
            vec![
                tlscope_wire::CipherSuite(0x0005), // RSA_WITH_RC4_128_SHA
                tlscope_wire::CipherSuite(0x0004),
                tlscope_wire::CipherSuite(0x000a),
            ],
            vec![],
            vec![],
        ),
    )
}

/// All application/tool/malware families.
pub fn all_apps() -> Vec<Family> {
    vec![
        grid_ftp(),
        nagios(),
        legacy_sslv2_probe(),
        lookout(),
        craftar(),
        kaspersky(),
        avast(),
        bluecoat(),
        shodan(),
        dropbox(),
        thunderbird(),
        apple_mail(),
        spotlight(),
        git(),
        flux(),
        facebook_app(),
        hola_vpn(),
        zbot(),
        install_money(),
        splunk_forwarder(),
        interwise_client(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_offers_null_first() {
        let g = grid_ftp();
        let tls = &g.eras[0].tls;
        assert!(tls.ciphers[0].is_null_encryption());
        assert!(tls.count_ciphers(|c| c.is_null_encryption()) >= 3);
        // But it also offers real ciphers for peers that insist.
        assert!(tls.count_ciphers(|c| c.is_cbc()) > 0);
    }

    #[test]
    fn nagios_is_anon_only_plus_null_null() {
        let n = nagios();
        let tls = &n.eras[0].tls;
        assert!(tls.ciphers.iter().all(|c| c.is_anon() || c.is_null_null()));
        assert!(tls.ciphers.iter().any(|c| c.is_null_null()));
        // Includes the export-anon suites seen at the university (§5.5).
        assert!(tls.count_ciphers(|c| c.is_export() && c.is_anon()) > 0);
    }

    #[test]
    fn security_apps_offer_anon_or_null() {
        assert!(
            lookout().eras[0]
                .tls
                .count_ciphers(|c| c.is_null_encryption())
                > 0
        );
        assert!(lookout().eras[0].tls.count_ciphers(|c| c.is_anon()) > 0);
        assert!(
            craftar().eras[0]
                .tls
                .count_ciphers(|c| c.is_null_encryption())
                > 0
        );
        assert!(kaspersky().eras[0].tls.count_ciphers(|c| c.is_anon()) > 0);
    }

    #[test]
    fn shodan_offers_everything() {
        let tls = &shodan().eras[0].tls;
        assert!(tls.count_ciphers(|c| c.is_export()) > 0);
        assert!(tls.count_ciphers(|c| c.is_null_encryption()) > 0);
        assert!(tls.count_ciphers(|c| c.is_anon()) > 0);
        assert!(tls.count_ciphers(|c| c.is_rc4()) > 0);
        assert!(tls.offers_aead());
    }

    #[test]
    fn sslv2_probe_requests_ssl2() {
        assert_eq!(
            legacy_sslv2_probe().eras[0].tls.legacy_version,
            ProtocolVersion::Ssl2
        );
    }

    #[test]
    fn app_fingerprints_distinct() {
        let mut seen = std::collections::HashMap::new();
        for f in all_apps() {
            for e in &f.eras {
                let fp = e.tls.fingerprint();
                if let Some(prev) = seen.insert(fp, (f.name, e.versions)) {
                    panic!(
                        "fingerprint collision: {} {} vs {} {}",
                        prev.0, prev.1, f.name, e.versions
                    );
                }
            }
        }
    }

    #[test]
    fn malware_has_no_reneg_protection() {
        assert!(!zbot().eras[0]
            .tls
            .extensions
            .contains(&xt::RENEGOTIATION_INFO));
    }
}
