//! Unlabelled client populations.
//!
//! The paper attributes 69.23 % of fingerprinted connections; the rest
//! is software the authors never identified. These families model that
//! residue — they emit traffic but are never inserted into the
//! fingerprint database:
//!
//! * two export-advertising legacy embedded stacks (one SSL3-max, one
//!   TLS1.0-max) that carry the bulk of the early export advertising of
//!   Figure 7 and the early SSL 3 negotiations of Figure 1;
//! * the anonymous/NULL-offering SDK behind the unexplained mid-2015
//!   spike of §6.2 ("we could not determine the vast majority of
//!   applications responsible for this");
//! * three miscellaneous OpenSSL-shaped stacks standing in for the
//!   thousands of minor unidentified clients;
//! * a cipher-order-shuffling client (§4.1 hypothesises "software that
//!   does not send its ciphersuites in a fixed order (due to a bug,
//!   perhaps), causing an explosion of fingerprints").

use tlscope_chron::Date;
use tlscope_fingerprint::Category;
use tlscope_wire::exts::ext_type as xt;
use tlscope_wire::{NamedGroup, ProtocolVersion};

use crate::family::{Era, Family};
use crate::pools::{
    aead, mix, mix_no_ec, with_extras, Rc4Placement, ANON_POOL, EXPORT_POOL, NULL_POOL,
};
use crate::spec::TlsConfig;

fn cfg(
    version: ProtocolVersion,
    ciphers: Vec<tlscope_wire::CipherSuite>,
    extensions: Vec<u16>,
    curves: Vec<NamedGroup>,
) -> TlsConfig {
    let point_formats = if curves.is_empty() { vec![] } else { vec![0] };
    TlsConfig {
        legacy_version: version,
        supported_versions: vec![],
        min_version: ProtocolVersion::Ssl3,
        ciphers,
        extensions,
        curves,
        point_formats,
        compression: vec![0],
        grease: false,
        heartbeat_mode: 1,
    }
}

/// SSL3-only embedded stack with export suites (dies out by ~2014).
pub fn embedded_ssl3() -> Family {
    let mut tls = cfg(
        ProtocolVersion::Ssl3,
        with_extras(
            mix_no_ec(&[], 4, 2, 1, 1, Rc4Placement::Head),
            &EXPORT_POOL[..4],
        ),
        vec![],
        vec![],
    );
    tls.min_version = ProtocolVersion::Ssl3;
    Family::unlabelled(
        "(embedded stack, SSL3)",
        Category::Library,
        vec![Era {
            versions: "-",
            from: Date::ymd(2000, 1, 1),
            tls,
        }],
    )
}

/// TLS1.0-max embedded stack with export suites — the main Figure 7
/// export-advertising mass.
pub fn embedded_tls10() -> Family {
    Family::unlabelled(
        "(embedded stack, TLS1.0)",
        Category::Library,
        vec![Era {
            versions: "-",
            from: Date::ymd(2003, 1, 1),
            tls: cfg(
                ProtocolVersion::Tls10,
                with_extras(
                    mix_no_ec(&[], 8, 2, 2, 2, Rc4Placement::Mid),
                    &EXPORT_POOL[..5],
                ),
                vec![],
                vec![],
            ),
        }],
    )
}

/// The anonymous/NULL-offering SDK behind the mid-2015 spike (§6.2).
pub fn anon_sdk() -> Family {
    Family::unlabelled(
        "(anon/NULL SDK)",
        Category::MobileApp,
        vec![
            Era {
                versions: "v1",
                from: Date::ymd(2012, 1, 1),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    with_extras(
                        mix(&[], 8, 2, 1, 0, Rc4Placement::Mid),
                        &[ANON_POOL[0], ANON_POOL[1], NULL_POOL[0]],
                    ),
                    vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
                    vec![NamedGroup::SECP256R1],
                ),
            },
            // The v2 rollout (mid-2015): more anon and NULL values —
            // this era's market spike is the Figure 7 spike.
            Era {
                versions: "v2",
                from: Date::ymd(2015, 5, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    with_extras(
                        mix(aead::GEN2, 8, 2, 1, 0, Rc4Placement::Mid),
                        &[
                            ANON_POOL[0],
                            ANON_POOL[1],
                            ANON_POOL[3],
                            ANON_POOL[4],
                            NULL_POOL[0],
                            NULL_POOL[1],
                        ],
                    ),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                    ],
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
        ],
    )
}

/// Miscellaneous unidentified stack A (curl-ish OpenSSL build).
pub fn misc_a() -> Family {
    Family::unlabelled(
        "(misc A)",
        Category::Library,
        vec![
            Era {
                versions: "-",
                from: Date::ymd(2010, 1, 1),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 14, 3, 2, 1, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                    ],
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::SECP521R1,
                    ],
                ),
            },
            Era {
                versions: "-",
                from: Date::ymd(2014, 6, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 12, 2, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                    ],
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::SECP521R1,
                    ],
                ),
            },
        ],
    )
}

/// Miscellaneous unidentified stack B (embedded HTTP client).
pub fn misc_b() -> Family {
    Family::unlabelled(
        "(misc B)",
        Category::Library,
        vec![
            Era {
                versions: "-",
                from: Date::ymd(2011, 1, 1),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 10, 2, 2, 0, Rc4Placement::Head),
                    vec![xt::SERVER_NAME],
                    vec![],
                ),
            },
            Era {
                versions: "-",
                from: Date::ymd(2015, 9, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(&[0xc02f, 0x009c], 8, 0, 1, 0, Rc4Placement::Mid),
                    vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
                    vec![NamedGroup::SECP256R1],
                ),
            },
        ],
    )
}

/// Miscellaneous unidentified stack C (enterprise agent).
pub fn misc_c() -> Family {
    Family::unlabelled(
        "(misc C)",
        Category::Library,
        vec![
            Era {
                versions: "-",
                from: Date::ymd(2012, 1, 1),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 16, 4, 3, 1, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::HEARTBEAT,
                        xt::SESSION_TICKET,
                    ],
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
            Era {
                versions: "-",
                from: Date::ymd(2016, 3, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN3, 8, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::HEARTBEAT,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    vec![
                        NamedGroup::X25519,
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
        ],
    )
}

/// Base configuration of the cipher-order-shuffling client (§4.1). The
/// traffic generator permutes `ciphers` per connection, exploding the
/// fingerprint space exactly the way the paper's 42,188 single-day
/// fingerprints suggest.
pub fn shuffler() -> Family {
    Family::unlabelled(
        "(cipher-shuffling client)",
        Category::Library,
        vec![Era {
            versions: "-",
            from: Date::ymd(2014, 6, 1),
            tls: cfg(
                ProtocolVersion::Tls12,
                mix(aead::GEN2, 10, 2, 1, 0, Rc4Placement::Mid),
                vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
                vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
            ),
        }],
    )
}

/// All unlabelled families.
pub fn all_unlabeled() -> Vec<Family> {
    vec![
        embedded_ssl3(),
        embedded_tls10(),
        anon_sdk(),
        misc_a(),
        misc_b(),
        misc_c(),
        shuffler(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_are_unlabelled() {
        for f in all_unlabeled() {
            assert!(!f.labelled, "{} should be unlabelled", f.name);
        }
    }

    #[test]
    fn embedded_stacks_advertise_export() {
        assert!(embedded_ssl3().eras[0].tls.count_ciphers(|c| c.is_export()) >= 4);
        assert!(
            embedded_tls10().eras[0]
                .tls
                .count_ciphers(|c| c.is_export())
                >= 5
        );
    }

    #[test]
    fn ssl3_stack_maxes_at_ssl3() {
        let tls = &embedded_ssl3().eras[0].tls;
        assert_eq!(tls.legacy_version, ProtocolVersion::Ssl3);
        assert!(!tls.supports_version(ProtocolVersion::Tls10));
    }

    #[test]
    fn anon_sdk_v2_offers_more_anon_than_v1() {
        let f = anon_sdk();
        let v1 = f.eras[0].tls.count_ciphers(|c| c.is_anon());
        let v2 = f.eras[1].tls.count_ciphers(|c| c.is_anon());
        assert!(v2 > v1);
        assert!(f.eras[1].tls.count_ciphers(|c| c.is_null_encryption()) >= 2);
    }

    #[test]
    fn unlabeled_fingerprints_distinct_from_each_other() {
        let mut seen = std::collections::HashMap::new();
        for f in all_unlabeled() {
            for e in &f.eras {
                let fp = e.tls.fingerprint();
                if let Some(prev) = seen.insert(fp, f.name) {
                    panic!("collision {} vs {}", prev, f.name);
                }
            }
        }
    }
}
