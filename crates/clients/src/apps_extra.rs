//! Second batch of client families: command-line tools, email clients,
//! VPNs, and the embedded/IoT devices §7.2 singles out ("printers and
//! even smart light bulbs support TLS ... many do not then provide
//! security updates").
//!
//! These thicken the fingerprint universe (Table 2, Figure 4) and add
//! labelled sources for the long-tail behaviours: never-updated
//! embedded stacks keep RC4/3DES/DES/export offers alive years after
//! the browsers dropped them.

use tlscope_chron::Date;
use tlscope_fingerprint::Category;
use tlscope_wire::exts::ext_type as xt;
use tlscope_wire::{NamedGroup, ProtocolVersion};

use crate::family::{Era, Family};
use crate::pools::{aead, mix, mix_no_ec, with_extras, Rc4Placement, EXPORT_POOL};
use crate::spec::TlsConfig;

fn cfg(
    version: ProtocolVersion,
    ciphers: Vec<tlscope_wire::CipherSuite>,
    extensions: Vec<u16>,
    curves: Vec<NamedGroup>,
) -> TlsConfig {
    let point_formats = if curves.is_empty() {
        vec![]
    } else {
        vec![0, 1, 2]
    };
    TlsConfig {
        legacy_version: version,
        supported_versions: vec![],
        min_version: ProtocolVersion::Ssl3,
        ciphers,
        extensions,
        curves,
        point_formats,
        compression: vec![0],
        grease: false,
        heartbeat_mode: 1,
    }
}

const OPENSSL_CURVES: [NamedGroup; 4] = [
    NamedGroup::SECT571R1,
    NamedGroup::SECP521R1,
    NamedGroup::SECP384R1,
    NamedGroup::SECP256R1,
];

/// curl (libcurl + OpenSSL): tracks OpenSSL eras with its own extension
/// order (no session tickets by default in the old days).
pub fn curl() -> Family {
    Family::new(
        "curl",
        Category::DevTool,
        vec![
            Era {
                versions: "7.2x",
                from: Date::ymd(2011, 6, 1),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 14, 2, 2, 1, Rc4Placement::Mid),
                    vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            Era {
                versions: "7.3x-7.4x",
                from: Date::ymd(2013, 9, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(
                        &[0xc02f, 0xc02b, 0x009e, 0x009c],
                        16,
                        2,
                        2,
                        0,
                        Rc4Placement::Mid,
                    ),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::HEARTBEAT,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            Era {
                versions: "7.5x+",
                from: Date::ymd(2016, 11, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN3, 10, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::ALPN,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    vec![
                        NamedGroup::X25519,
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP521R1,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
        ],
    )
}

/// wget (GnuTLS build): a different library lineage — distinct
/// extension order and curve list from the OpenSSL crowd.
pub fn wget() -> Family {
    Family::new(
        "wget",
        Category::DevTool,
        vec![
            Era {
                versions: "1.13-1.16",
                from: Date::ymd(2011, 8, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(&[], 12, 2, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::MAX_FRAGMENT_LENGTH,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::SESSION_TICKET,
                    ],
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::SECP521R1,
                    ],
                ),
            },
            Era {
                versions: "1.17+",
                from: Date::ymd(2015, 11, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 10, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::MAX_FRAGMENT_LENGTH,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::SESSION_TICKET,
                        xt::ENCRYPT_THEN_MAC,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::X25519,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
        ],
    )
}

/// Python requests/urllib3 over pyOpenSSL.
pub fn python_requests() -> Family {
    Family::new(
        "Python requests",
        Category::DevTool,
        vec![
            Era {
                versions: "2.x/py2",
                from: Date::ymd(2013, 1, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(
                        &[0xc02b, 0xc02f, 0x009e, 0x009c],
                        14,
                        2,
                        1,
                        0,
                        Rc4Placement::Mid,
                    ),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                        xt::HEARTBEAT,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::NPN,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            Era {
                versions: "2.x/py3",
                from: Date::ymd(2016, 6, 1),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN3, 8, 0, 0, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    vec![
                        NamedGroup::X25519,
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP521R1,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
        ],
    )
}

/// Outlook desktop (Schannel lineage, its own extension subset).
pub fn outlook() -> Family {
    Family::new(
        "Outlook",
        Category::Email,
        vec![
            Era {
                versions: "2010-2013",
                from: Date::ymd(2010, 6, 15),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 8, 2, 1, 1, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::RENEGOTIATION_INFO,
                    ],
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
            Era {
                versions: "2016+",
                from: Date::ymd(2015, 9, 22),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(
                        &[0xc02b, 0xc02c, 0xc02f, 0xc030],
                        8,
                        0,
                        1,
                        0,
                        Rc4Placement::Mid,
                    ),
                    vec![
                        xt::SERVER_NAME,
                        xt::STATUS_REQUEST,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::SESSION_TICKET,
                        xt::EXTENDED_MASTER_SECRET,
                        xt::RENEGOTIATION_INFO,
                    ],
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
        ],
    )
}

/// OpenVPN's TLS control channel (OpenSSL, tls-auth era).
pub fn openvpn() -> Family {
    Family::new(
        "OpenVPN",
        Category::OsTool,
        vec![Era {
            versions: "2.3-2.4",
            from: Date::ymd(2013, 1, 8),
            tls: cfg(
                ProtocolVersion::Tls12,
                mix(
                    &[0x009e, 0x009f, 0xc02f, 0xc030],
                    10,
                    0,
                    1,
                    0,
                    Rc4Placement::Mid,
                ),
                vec![
                    xt::RENEGOTIATION_INFO,
                    xt::SUPPORTED_GROUPS,
                    xt::EC_POINT_FORMATS,
                    xt::SESSION_TICKET,
                    xt::SIGNATURE_ALGORITHMS,
                ],
                OPENSSL_CURVES.to_vec(),
            ),
        }],
    )
}

/// Tor's TLS camouflage layer (NSS-shaped, Firefox-adjacent on purpose).
pub fn tor() -> Family {
    Family::new(
        "Tor",
        Category::OsTool,
        vec![Era {
            versions: "0.2.x",
            from: Date::ymd(2012, 6, 1),
            tls: cfg(
                ProtocolVersion::Tls12,
                mix(aead::GEN2, 11, 2, 1, 0, Rc4Placement::Mid),
                vec![
                    xt::SERVER_NAME,
                    xt::RENEGOTIATION_INFO,
                    xt::SUPPORTED_GROUPS,
                    xt::EC_POINT_FORMATS,
                    xt::SESSION_TICKET,
                ],
                vec![
                    NamedGroup::SECP256R1,
                    NamedGroup::SECP384R1,
                    NamedGroup::SECP521R1,
                ],
            ),
        }],
    )
}

/// Network printer firmware: TLS 1.0 forever, DES and export still on
/// (§7.2's abandoned-device long tail).
pub fn printer() -> Family {
    Family::new(
        "HP LaserJet firmware",
        Category::Library,
        vec![Era {
            versions: "2009 firmware",
            from: Date::ymd(2009, 1, 1),
            tls: cfg(
                ProtocolVersion::Tls10,
                with_extras(
                    mix_no_ec(&[], 6, 2, 2, 2, Rc4Placement::Mid),
                    &EXPORT_POOL[..2],
                ),
                vec![],
                vec![],
            ),
        }],
    )
}

/// Smart light bulb hub: shipped 2014, never updated.
pub fn smart_bulb() -> Family {
    Family::new(
        "SmartHome hub",
        Category::Library,
        vec![Era {
            versions: "1.0 (abandoned)",
            from: Date::ymd(2014, 3, 1),
            tls: cfg(
                ProtocolVersion::Tls10,
                mix_no_ec(&[], 4, 1, 1, 1, Rc4Placement::Mid),
                vec![xt::SERVER_NAME],
                vec![],
            ),
        }],
    )
}

/// Smart TV platform: TLS 1.2 but frozen 2014-era OpenSSL cipher list.
pub fn smart_tv() -> Family {
    Family::new(
        "SmartTV platform",
        Category::Library,
        vec![Era {
            versions: "2014 SDK",
            from: Date::ymd(2014, 5, 1),
            tls: cfg(
                ProtocolVersion::Tls12,
                mix(&[0xc02f, 0xc02b, 0x009c], 14, 4, 2, 1, Rc4Placement::Mid),
                vec![
                    xt::SERVER_NAME,
                    xt::RENEGOTIATION_INFO,
                    xt::SUPPORTED_GROUPS,
                    xt::EC_POINT_FORMATS,
                    xt::SESSION_TICKET,
                    xt::HEARTBEAT,
                    xt::SIGNATURE_ALGORITHMS,
                ],
                OPENSSL_CURVES.to_vec(),
            ),
        }],
    )
}

/// A second malware family with a GOST-flavoured custom stack (§7.3's
/// "custom TLS implementations with questionable security").
pub fn gost_malware() -> Family {
    Family::new(
        "GostRAT",
        Category::Malware,
        vec![Era {
            versions: "-",
            from: Date::ymd(2015, 2, 1),
            tls: cfg(
                ProtocolVersion::Tls12,
                with_extras(
                    mix_no_ec(&[], 6, 1, 1, 0, Rc4Placement::Mid),
                    &[0x0081, 0x0080], // offers GOST suites
                ),
                vec![xt::SERVER_NAME, xt::SESSION_TICKET],
                vec![],
            ),
        }],
    )
}

/// Steam client (custom stack, chacha-forward).
pub fn steam() -> Family {
    Family::new(
        "Steam",
        Category::MobileApp,
        vec![Era {
            versions: "2016+",
            from: Date::ymd(2016, 2, 1),
            tls: cfg(
                ProtocolVersion::Tls12,
                mix(
                    &[0xcca8, 0xc02f, 0xc02b, 0x009c],
                    8,
                    0,
                    1,
                    0,
                    Rc4Placement::Mid,
                ),
                vec![
                    xt::SERVER_NAME,
                    xt::SUPPORTED_GROUPS,
                    xt::EC_POINT_FORMATS,
                    xt::SIGNATURE_ALGORITHMS,
                    xt::ALPN,
                    xt::STATUS_REQUEST,
                ],
                vec![NamedGroup::X25519, NamedGroup::SECP256R1],
            ),
        }],
    )
}

/// All second-batch families.
pub fn all_apps_extra() -> Vec<Family> {
    vec![
        curl(),
        wget(),
        python_requests(),
        outlook(),
        openvpn(),
        tor(),
        printer(),
        smart_bulb(),
        smart_tv(),
        gost_malware(),
        steam(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iot_devices_are_frozen_laggards() {
        for f in [printer(), smart_bulb()] {
            let tls = &f.eras[0].tls;
            assert!(!tls.supports_version(ProtocolVersion::Tls11), "{}", f.name);
            assert!(!tls.offers_aead(), "{}", f.name);
            assert_eq!(f.eras.len(), 1, "{} should never update", f.name);
        }
        assert!(printer().eras[0].tls.count_ciphers(|c| c.is_export()) > 0);
    }

    #[test]
    fn gost_malware_offers_gost() {
        let tls = &gost_malware().eras[0].tls;
        assert!(tls
            .ciphers
            .iter()
            .any(|c| c.name().map(|n| n.contains("GOST")).unwrap_or(false)));
    }

    #[test]
    fn extra_fingerprints_distinct() {
        let mut seen = std::collections::HashMap::new();
        for f in all_apps_extra() {
            for e in &f.eras {
                let fp = e.tls.fingerprint();
                if let Some(prev) = seen.insert(fp, (f.name, e.versions)) {
                    panic!("collision {:?} vs {} {}", prev, f.name, e.versions);
                }
            }
        }
    }

    #[test]
    fn tools_track_their_libraries() {
        // curl's middle era carries the heartbeat extension (OpenSSL
        // 1.0.1 lineage); the late era does not.
        let c = curl();
        assert!(c.eras[1].tls.extensions.contains(&xt::HEARTBEAT));
        assert!(!c.eras[2].tls.extensions.contains(&xt::HEARTBEAT));
    }
}
