//! # tlscope-clients
//!
//! The historical TLS client-configuration database behind the tlscope
//! reproduction of *Coming of Age* (IMC 2018).
//!
//! Every client the paper names — the five major browsers with their
//! full cipher-reduction history (Tables 3–6), the TLS libraries that
//! dominate fingerprint coverage (Table 2), and the anomalous clients of
//! §5–§6 (GRID NULL-cipher movers, Nagios anonymous-DH probes, apps that
//! unwittingly offer NULL/anon suites, scanners, malware) — is modelled
//! as a [`family::Family`] of configuration eras that emit
//! genuine ClientHello bytes.
//!
//! The [`adoption`] module models how installed bases migrate between
//! eras (fast browser ramps, slow OS tails), which is what makes
//! "browsers dropped RC4 in 2015 but clients kept advertising it"
//! reproducible.
//!
//! ```
//! use tlscope_clients::catalog;
//! use tlscope_chron::Date;
//!
//! let (db, collisions) = catalog::build_database();
//! assert_eq!(collisions, 0);
//!
//! // What was Chrome shipping the day Heartbleed dropped?
//! let chrome = tlscope_clients::browsers::chrome();
//! let era = chrome.era_at(Date::ymd(2014, 4, 7)).unwrap();
//! assert!(era.tls.offers_aead());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adoption;
pub mod apps;
pub mod apps_extra;
pub mod browsers;
pub mod catalog;
pub mod family;
pub mod libraries;
pub mod pools;
pub mod spec;
pub mod unlabeled;

pub use adoption::AdoptionModel;
pub use family::{Era, Family};
pub use spec::{ClientSpec, HelloEntropy, HelloPatches, TlsConfig};
