//! The full client catalog: every family, and the fingerprint database
//! built from it.
//!
//! This is the analogue of the paper's fingerprint-collection effort
//! (§4): the authors gathered hellos from BrowserStack sessions,
//! compiled OpenSSL versions, and prior studies, then labelled them. We
//! gather hellos by *emitting* them from every catalogued configuration
//! and fingerprinting the bytes with the same extractor the passive
//! pipeline uses.

use tlscope_fingerprint::{FingerprintDb, InsertOutcome};

use crate::adoption::AdoptionModel;
use crate::apps::all_apps;
use crate::apps_extra::all_apps_extra;
use crate::browsers::all_browsers;
use crate::family::Family;
use crate::libraries::all_libraries;
use crate::unlabeled::all_unlabeled;

/// All families in the catalog.
pub fn all_families() -> Vec<Family> {
    let mut out = all_browsers();
    out.extend(all_libraries());
    out.extend(all_apps());
    out.extend(all_apps_extra());
    out.extend(all_unlabeled());
    out
}

/// The adoption model appropriate for a family.
pub fn adoption_for(family: &Family) -> AdoptionModel {
    use tlscope_fingerprint::Category;
    match family.category {
        Category::Browser => AdoptionModel::browser(),
        Category::Library => AdoptionModel::os_library(),
        _ => AdoptionModel::application(),
    }
}

/// Build the labelled fingerprint database from the whole catalog.
///
/// Returns the database and the number of collisions encountered while
/// building it (tombstoned fingerprints).
pub fn build_database() -> (FingerprintDb, usize) {
    let mut db = FingerprintDb::new();
    let mut collisions = 0;
    for family in all_families() {
        if !family.labelled {
            continue;
        }
        for spec in family.specs() {
            match db.insert(spec.tls.fingerprint(), spec.label()) {
                InsertOutcome::RemovedCollision => collisions += 1,
                InsertOutcome::AlreadyRemoved => collisions += 1,
                _ => {}
            }
        }
    }
    (db, collisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_chron::Date;
    use tlscope_fingerprint::Category;

    #[test]
    fn catalog_has_all_table2_categories() {
        let families = all_families();
        for cat in Category::all() {
            assert!(
                families.iter().any(|f| f.category == cat),
                "no family in category {:?}",
                cat
            );
        }
    }

    #[test]
    fn catalog_scale() {
        let families = all_families();
        let specs: usize = families.iter().map(|f| f.eras.len()).sum();
        // The paper's database has 1,684 fingerprints across thousands of
        // fine-grained versions; our catalog models configuration *eras*,
        // so tens of entries is the right granularity — but it must span
        // enough variety to exercise every analysis.
        assert!(specs >= 60, "only {specs} specs");
        assert!(families.len() >= 25, "only {} families", families.len());
    }

    #[test]
    fn database_builds_without_unintended_collisions() {
        let (db, collisions) = build_database();
        assert_eq!(collisions, 0, "unexpected fingerprint collisions");
        assert!(db.len() >= 60);
    }

    #[test]
    fn every_family_is_active_by_study_end() {
        let end = Date::ymd(2018, 4, 1);
        for f in all_families() {
            assert!(
                f.era_at(end).is_some(),
                "{} has no active era at study end",
                f.name
            );
        }
    }

    #[test]
    fn database_lookup_matches_catalog_labels() {
        let (db, _) = build_database();
        for f in all_families() {
            for spec in f.specs() {
                let fp = spec.tls.fingerprint();
                if !f.labelled {
                    // Unlabelled traffic must stay unlabelled.
                    assert!(db.lookup(&fp).is_none(), "{} unexpectedly labelled", f.name);
                    continue;
                }
                let label = db.lookup(&fp).unwrap_or_else(|| {
                    panic!("{} {} fingerprint missing from db", f.name, spec.versions)
                });
                // Name matches unless a library absorbed it.
                assert!(
                    label.name == spec.name || label.category == Category::Library,
                    "{} {} mislabelled as {}",
                    f.name,
                    spec.versions,
                    label.name
                );
            }
        }
    }
}
