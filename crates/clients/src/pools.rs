//! Ordered cipher pools and the `mix` builder used to construct
//! historically shaped client cipher lists.
//!
//! The browser tables in the paper (Tables 3, 4, 5) record *counts* of
//! CBC/RC4/3DES suites per browser version. We reconstruct concrete
//! lists by drawing, in preference order, from pools of real IANA
//! suites. The resulting lists have exactly the counts the paper
//! reports, are made of suites those clients really shipped, and order
//! classes the way Figure 5 shows (AEAD and CBC near the head, 3DES and
//! DES at the tail).

use tlscope_wire::CipherSuite;

/// AES/Camellia/SEED CBC suites (no 3DES/DES), strongest-first.
pub const CBC_AES_POOL: &[u16] = &[
    0xc009, 0xc013, 0xc00a, 0xc014, 0xc023, 0xc027, 0xc024, 0xc028, 0x0033, 0x0039, 0x002f, 0x0035,
    0x003c, 0x003d, 0x0067, 0x006b, 0x0032, 0x0038, 0x0040, 0x006a, 0x0041, 0x0084, 0x0045, 0x0088,
    0x0096, 0x009a, 0xc004, 0xc005, 0xc00e, 0xc00f, 0xc025, 0xc026,
];

/// RC4 suites in the order clients historically preferred them.
pub const RC4_POOL: &[u16] = &[0xc011, 0xc007, 0x0005, 0x0004, 0xc00c, 0xc002, 0x0066];

/// 3DES suites, ECDHE-first.
pub const TDES_POOL: &[u16] = &[
    0xc012, 0xc008, 0x0016, 0x000a, 0xc00d, 0xc003, 0x0013, 0x000d,
];

/// Single-DES suites.
pub const DES_POOL: &[u16] = &[0x0015, 0x0009, 0x0012, 0x000c];

/// Export-grade suites (FREAK/Logjam surface).
pub const EXPORT_POOL: &[u16] = &[0x0003, 0x0006, 0x0008, 0x0014, 0x0011, 0x000e];

/// NULL-encryption suites.
pub const NULL_POOL: &[u16] = &[0x0002, 0x0001, 0x003b, 0xc010, 0xc006];

/// Anonymous (unauthenticated) suites.
pub const ANON_POOL: &[u16] = &[
    0x0034, 0x003a, 0x0018, 0x001b, 0xc018, 0xc019, 0x0017, 0x0019,
];

/// Where RC4 sits in the constructed list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rc4Placement {
    /// RC4 at the very head (early-2010s Android, BEAST-era servers'
    /// favourite clients).
    Head,
    /// RC4 between the CBC block and 3DES (mid-era browsers).
    Mid,
}

/// Build a cipher list with exact per-class counts.
///
/// Order: `aead` (verbatim), then CBC-AES, then RC4 (placement
/// configurable), then 3DES, then DES — the "modern first, legacy last"
/// shape of Figure 5.
///
/// # Panics
/// Panics if a count exceeds its pool — that is a data-entry bug in a
/// client table, not an input condition.
pub fn mix(
    aead: &[u16],
    cbc_aes: usize,
    rc4: usize,
    tdes: usize,
    des: usize,
    rc4_placement: Rc4Placement,
) -> Vec<CipherSuite> {
    assert!(cbc_aes <= CBC_AES_POOL.len(), "cbc_aes pool exhausted");
    assert!(rc4 <= RC4_POOL.len(), "rc4 pool exhausted");
    assert!(tdes <= TDES_POOL.len(), "3des pool exhausted");
    assert!(des <= DES_POOL.len(), "des pool exhausted");
    let mut out: Vec<u16> = Vec::with_capacity(aead.len() + cbc_aes + rc4 + tdes + des);
    match rc4_placement {
        Rc4Placement::Head => {
            out.extend_from_slice(&RC4_POOL[..rc4]);
            out.extend_from_slice(aead);
            out.extend_from_slice(&CBC_AES_POOL[..cbc_aes]);
        }
        Rc4Placement::Mid => {
            out.extend_from_slice(aead);
            out.extend_from_slice(&CBC_AES_POOL[..cbc_aes]);
            out.extend_from_slice(&RC4_POOL[..rc4]);
        }
    }
    out.extend_from_slice(&TDES_POOL[..tdes]);
    out.extend_from_slice(&DES_POOL[..des]);
    out.into_iter().map(CipherSuite).collect()
}

/// RSA/DHE-only CBC suites for stacks without elliptic-curve support
/// (OpenSSL 0.9.8 default builds, Android 2.3, Java 6, odd malware).
pub const CBC_AES_NO_EC_POOL: &[u16] = &[
    0x002f, 0x0035, 0x0033, 0x0039, 0x003c, 0x003d, 0x0067, 0x006b, 0x0032, 0x0038, 0x0041, 0x0084,
    0x0096, 0x0045, 0x0088, 0x0040,
];

/// RC4 suites for EC-free stacks.
pub const RC4_NO_EC_POOL: &[u16] = &[0x0005, 0x0004, 0x0066];

/// 3DES suites for EC-free stacks.
pub const TDES_NO_EC_POOL: &[u16] = &[0x0016, 0x000a, 0x0013, 0x000d];

/// [`mix`] for clients with no elliptic-curve support: every drawn suite
/// uses RSA/DHE key exchange.
pub fn mix_no_ec(
    aead: &[u16],
    cbc_aes: usize,
    rc4: usize,
    tdes: usize,
    des: usize,
    rc4_placement: Rc4Placement,
) -> Vec<CipherSuite> {
    assert!(
        cbc_aes <= CBC_AES_NO_EC_POOL.len(),
        "no-ec cbc pool exhausted"
    );
    assert!(rc4 <= RC4_NO_EC_POOL.len(), "no-ec rc4 pool exhausted");
    assert!(tdes <= TDES_NO_EC_POOL.len(), "no-ec 3des pool exhausted");
    assert!(des <= DES_POOL.len(), "des pool exhausted");
    let mut out: Vec<u16> = Vec::new();
    match rc4_placement {
        Rc4Placement::Head => {
            out.extend_from_slice(&RC4_NO_EC_POOL[..rc4]);
            out.extend_from_slice(aead);
            out.extend_from_slice(&CBC_AES_NO_EC_POOL[..cbc_aes]);
        }
        Rc4Placement::Mid => {
            out.extend_from_slice(aead);
            out.extend_from_slice(&CBC_AES_NO_EC_POOL[..cbc_aes]);
            out.extend_from_slice(&RC4_NO_EC_POOL[..rc4]);
        }
    }
    out.extend_from_slice(&TDES_NO_EC_POOL[..tdes]);
    out.extend_from_slice(&DES_POOL[..des]);
    out.into_iter().map(CipherSuite).collect()
}

/// Append extra suites (export/NULL/anon/SCSV tails) to a list.
pub fn with_extras(mut list: Vec<CipherSuite>, extras: &[u16]) -> Vec<CipherSuite> {
    list.extend(extras.iter().copied().map(CipherSuite));
    list
}

/// Common AEAD heads by era.
pub mod aead {
    /// First-generation GCM (2013): RSA-kx GCM plus DHE GCM.
    pub const GEN1: &[u16] = &[0x009c, 0x009e];
    /// ECDHE GCM generation (2014): ECDHE + legacy RSA GCM.
    pub const GEN2: &[u16] = &[0xc02b, 0xc02f, 0x009e, 0x009c];
    /// With pre-standard ChaCha20 (Chrome 33+, 2014-2015).
    pub const GEN2_CHACHA_OLD: &[u16] = &[0xc02b, 0xc02f, 0xcc14, 0xcc13, 0x009e, 0x009c];
    /// Full modern set with RFC 7905 ChaCha20 (2016+). AES-GCM leads:
    /// desktop clients with AES-NI prefer it, which is why negotiated
    /// ChaCha20 stays small (1.7 % in 2018-03, §6.3.2) even though most
    /// clients offer it.
    pub const GEN3: &[u16] = &[
        0xc02b, 0xc02f, 0xcca9, 0xcca8, 0xc02c, 0xc030, 0x009e, 0x009c,
    ];
    /// TLS 1.3 suites prepended (2017-2018 drafts).
    pub const TLS13: &[u16] = &[0x1301, 0x1302, 0x1303];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_contain_only_expected_classes() {
        for &id in CBC_AES_POOL {
            let c = CipherSuite(id);
            assert!(c.is_cbc() && !c.is_3des() && !c.is_des(), "{c}");
        }
        for &id in RC4_POOL {
            assert!(CipherSuite(id).is_rc4(), "{:#06x}", id);
        }
        for &id in TDES_POOL {
            assert!(CipherSuite(id).is_3des(), "{:#06x}", id);
        }
        for &id in DES_POOL {
            let c = CipherSuite(id);
            assert!(c.is_des() && !c.is_3des(), "{c}");
        }
        for &id in EXPORT_POOL {
            assert!(CipherSuite(id).is_export(), "{:#06x}", id);
        }
        for &id in NULL_POOL {
            assert!(CipherSuite(id).is_null_encryption(), "{:#06x}", id);
        }
        for &id in ANON_POOL {
            assert!(CipherSuite(id).is_anon(), "{:#06x}", id);
        }
        for pool in [
            CBC_AES_POOL,
            RC4_POOL,
            TDES_POOL,
            DES_POOL,
            EXPORT_POOL,
            NULL_POOL,
            ANON_POOL,
        ] {
            for &id in pool {
                assert!(
                    CipherSuite(id).info().is_some(),
                    "unregistered pool entry {id:#06x}"
                );
            }
        }
    }

    #[test]
    fn aead_heads_are_aead() {
        for head in [
            aead::GEN1,
            aead::GEN2,
            aead::GEN2_CHACHA_OLD,
            aead::GEN3,
            aead::TLS13,
        ] {
            for &id in head {
                assert!(CipherSuite(id).is_aead(), "{:#06x}", id);
            }
        }
    }

    #[test]
    fn mix_counts_are_exact() {
        let list = mix(aead::GEN2, 10, 4, 3, 2, Rc4Placement::Mid);
        let count = |p: fn(CipherSuite) -> bool| list.iter().filter(|c| p(**c)).count();
        assert_eq!(count(|c| c.is_aead()), 4);
        assert_eq!(count(|c| c.is_rc4()), 4);
        assert_eq!(count(|c| c.is_3des()), 3);
        assert_eq!(count(|c| c.is_des()), 2);
        // CBC total = cbc_aes + 3des + des (the Table 3 convention).
        assert_eq!(count(|c| c.is_cbc()), 10 + 3 + 2);
        assert_eq!(list.len(), 4 + 10 + 4 + 3 + 2);
    }

    #[test]
    fn rc4_placement() {
        let head = mix(&[], 5, 2, 1, 0, Rc4Placement::Head);
        assert!(head[0].is_rc4() && head[1].is_rc4());
        let mid = mix(aead::GEN2, 5, 2, 1, 0, Rc4Placement::Mid);
        assert!(mid[0].is_aead());
        let first_rc4 = mid.iter().position(|c| c.is_rc4()).unwrap();
        let first_3des = mid.iter().position(|c| c.is_3des()).unwrap();
        assert!(first_rc4 > 0 && first_rc4 < first_3des);
    }

    #[test]
    fn extras_appended_at_tail() {
        let list = with_extras(mix(&[], 2, 0, 0, 0, Rc4Placement::Mid), &[0x00ff]);
        assert!(list.last().unwrap().is_signaling());
        assert_eq!(list.len(), 3);
    }
}
