//! TLS library and OS-stack client configurations.
//!
//! Libraries dominate the fingerprint database (Table 2: 700 of 1,684
//! fingerprints and 46.49 % of matched traffic). They also drive several
//! of the paper's long-tail findings: legacy OpenSSL/Java/Android stacks
//! are where export-grade and DES offers persist into the mid-2010s
//! (Figure 7), OpenSSL-linked clients are the ones still advertising the
//! Heartbeat extension (§5.4), and Android 2.3 is the canonical
//! "TLS 1.0 only, no ECDHE, no AEAD" laggard (§7.2).

use tlscope_chron::Date;
use tlscope_fingerprint::Category;
use tlscope_wire::exts::ext_type as xt;
use tlscope_wire::{NamedGroup, ProtocolVersion};

use crate::family::{Era, Family};
use crate::pools::{aead, mix, mix_no_ec, with_extras, Rc4Placement, EXPORT_POOL};
use crate::spec::TlsConfig;

fn cfg(
    version: ProtocolVersion,
    ciphers: Vec<tlscope_wire::CipherSuite>,
    extensions: Vec<u16>,
    curves: Vec<NamedGroup>,
) -> TlsConfig {
    // OpenSSL-style stacks advertise all three point formats; an empty
    // curve list means an EC-free (or extension-free) stack.
    let point_formats = if curves.is_empty() {
        vec![]
    } else {
        vec![0, 1, 2]
    };
    TlsConfig {
        legacy_version: version,
        supported_versions: vec![],
        min_version: ProtocolVersion::Ssl3,
        ciphers,
        extensions,
        curves,
        point_formats,
        compression: vec![0],
        grease: false,
        heartbeat_mode: 1,
    }
}

/// Old OpenSSL orders its curves by strength — sect571r1 first. This is
/// why §6.3.3 sees sect571r1 negotiated at all (0.2 %): OpenSSL clients
/// meeting servers with the same strength-ordered default.
const OPENSSL_CURVES: [NamedGroup; 4] = [
    NamedGroup::SECT571R1,
    NamedGroup::SECP521R1,
    NamedGroup::SECP384R1,
    NamedGroup::SECP256R1,
];

/// OpenSSL era list. Heartbeat is advertised from 1.0.1 (where the
/// Heartbleed bug lived) through 1.0.2; 1.1.0 drops it along with RC4.
pub fn openssl() -> Family {
    let ossl_101_exts = vec![
        xt::SERVER_NAME,
        xt::RENEGOTIATION_INFO,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SESSION_TICKET,
        xt::HEARTBEAT,
        xt::SIGNATURE_ALGORITHMS,
    ];
    let ossl_110_exts = vec![
        xt::SERVER_NAME,
        xt::RENEGOTIATION_INFO,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SESSION_TICKET,
        xt::ENCRYPT_THEN_MAC,
        xt::EXTENDED_MASTER_SECRET,
        xt::SIGNATURE_ALGORITHMS,
    ];
    let mut ossl111 = cfg(
        ProtocolVersion::Tls12,
        {
            let mut all: Vec<tlscope_wire::CipherSuite> = aead::TLS13
                .iter()
                .copied()
                .map(tlscope_wire::CipherSuite)
                .collect();
            all.append(&mut mix(aead::GEN3, 10, 0, 1, 0, Rc4Placement::Mid));
            all
        },
        {
            let mut e = ossl_110_exts.clone();
            e.push(xt::SUPPORTED_VERSIONS);
            e.push(xt::KEY_SHARE);
            e.push(xt::PSK_KEY_EXCHANGE_MODES);
            e
        },
        vec![
            NamedGroup::X25519,
            NamedGroup::SECP256R1,
            NamedGroup::SECP521R1,
            NamedGroup::SECP384R1,
        ],
    );
    ossl111.supported_versions = vec![
        ProtocolVersion::Tls13Draft(26),
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls10,
    ];
    Family::new(
        "OpenSSL",
        Category::Library,
        vec![
            // 0.9.8: extension-free hello, export and DES suites in the
            // default list.
            Era {
                versions: "0.9.8",
                from: Date::ymd(2005, 7, 5),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    with_extras(
                        mix_no_ec(&[], 12, 2, 2, 2, Rc4Placement::Mid),
                        &EXPORT_POOL[..4],
                    ),
                    vec![],
                    vec![],
                ),
            },
            Era {
                versions: "1.0.0",
                from: Date::ymd(2010, 3, 29),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    with_extras(mix(&[], 16, 2, 2, 2, Rc4Placement::Mid), &EXPORT_POOL[..2]),
                    vec![
                        xt::SERVER_NAME,
                        xt::RENEGOTIATION_INFO,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SESSION_TICKET,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            // 1.0.1 (14/03/2012): TLS 1.2, AES-GCM, and the Heartbeat
            // extension that Heartbleed lived in.
            Era {
                versions: "1.0.1",
                from: Date::ymd(2012, 3, 14),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(
                        &[0xc02f, 0xc02b, 0x009e, 0x009c, 0x009d, 0x009f],
                        18,
                        4,
                        3,
                        2,
                        Rc4Placement::Mid,
                    ),
                    ossl_101_exts.clone(),
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            // 1.0.2 (22/01/2015): extended cipher list, still heartbeat.
            Era {
                versions: "1.0.2",
                from: Date::ymd(2015, 1, 22),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 18, 2, 2, 0, Rc4Placement::Mid),
                    ossl_101_exts,
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            // 1.1.0 (25/08/2016): ChaCha20, x25519; RC4 and heartbeat gone.
            Era {
                versions: "1.1.0",
                from: Date::ymd(2016, 8, 25),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    with_extras(
                        mix(aead::GEN3, 12, 0, 1, 0, Rc4Placement::Mid),
                        &[0xc0ac, 0xc09e], // AES-CCM in the 1.1.0 default list
                    ),
                    ossl_110_exts,
                    vec![
                        NamedGroup::X25519,
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP521R1,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
            // 1.1.1 pre-releases (2018): TLS 1.3 draft 26 — only the
            // bleeding edge compiles it before the study window closes.
            Era {
                versions: "1.1.1-pre",
                from: Date::ymd(2018, 4, 10),
                tls: ossl111,
            },
        ],
    )
}

/// Android SDK platform stack (what the paper labels "Android SDK" —
/// apps and Chrome-on-Android alike resolve to it).
pub fn android() -> Family {
    Family::new(
        "Android SDK",
        Category::Library,
        vec![
            // 2.3 Gingerbread: TLS 1.0 only, RC4-first, export suites
            // still enabled (§7.2's canonical laggard).
            Era {
                versions: "2.3",
                from: Date::ymd(2010, 12, 6),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    with_extras(
                        mix_no_ec(&[], 6, 2, 2, 2, Rc4Placement::Head),
                        &EXPORT_POOL[..3],
                    ),
                    vec![xt::SESSION_TICKET],
                    vec![],
                ),
            },
            Era {
                versions: "4.0-4.3",
                from: Date::ymd(2011, 10, 18),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 12, 2, 2, 1, Rc4Placement::Head),
                    vec![
                        xt::SERVER_NAME,
                        xt::SESSION_TICKET,
                        xt::NPN,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            Era {
                versions: "4.4",
                from: Date::ymd(2013, 10, 31),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 12, 2, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SESSION_TICKET,
                        xt::NPN,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            // 5.x Lollipop (12/11/2014): TLS 1.2 by default, GCM, the
            // pre-standard ChaCha20 points.
            Era {
                versions: "5.0-5.1",
                from: Date::ymd(2014, 11, 12),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2_CHACHA_OLD, 8, 2, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SESSION_TICKET,
                        xt::NPN,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            // 6.0 Marshmallow (05/10/2015): RC4 dropped.
            Era {
                versions: "6.0",
                from: Date::ymd(2015, 10, 5),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2_CHACHA_OLD, 8, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            // 7.x Nougat (22/08/2016): BoringSSL — RFC 7905 ChaCha20,
            // x25519.
            Era {
                versions: "7-8",
                from: Date::ymd(2016, 8, 22),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN3, 6, 0, 0, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::EXTENDED_MASTER_SECRET,
                        xt::SESSION_TICKET,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::ALPN,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                    ],
                    vec![
                        NamedGroup::X25519,
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
        ],
    )
}

/// Apple SecureTransport as used by iOS system services and apps (the
/// paper's top long-lived fingerprint is the "iPad Air (library)").
pub fn apple_securetransport() -> Family {
    let st_exts = vec![
        xt::SERVER_NAME,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SIGNATURE_ALGORITHMS,
    ];
    let st_late = vec![
        xt::SERVER_NAME,
        xt::EXTENDED_MASTER_SECRET,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SIGNATURE_ALGORITHMS,
        xt::ALPN,
        xt::STATUS_REQUEST,
        xt::SCT,
    ];
    Family::new(
        "Apple SecureTransport",
        Category::Library,
        vec![
            // iOS 5/6 shipped TLS 1.2 remarkably early (2011).
            Era {
                versions: "iOS 5-6",
                from: Date::ymd(2011, 10, 12),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(&[], 16, 5, 4, 1, Rc4Placement::Head),
                    st_exts.clone(),
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::SECP521R1,
                    ],
                ),
            },
            Era {
                versions: "iOS 7-8",
                from: Date::ymd(2013, 9, 18),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(&[], 18, 4, 3, 0, Rc4Placement::Mid),
                    st_exts,
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::SECP521R1,
                    ],
                ),
            },
            // iOS 9 (16/09/2015): AES-GCM; RC4 off by default.
            Era {
                versions: "iOS 9-10",
                from: Date::ymd(2015, 9, 16),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 10, 0, 3, 0, Rc4Placement::Mid),
                    st_late.clone(),
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::SECP521R1,
                    ],
                ),
            },
            // iOS 11 (19/09/2017): ChaCha20-Poly1305; 3DES dropped.
            Era {
                versions: "iOS 11",
                from: Date::ymd(2017, 9, 19),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN3, 8, 0, 0, 0, Rc4Placement::Mid),
                    st_late,
                    vec![
                        NamedGroup::X25519,
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                    ],
                ),
            },
        ],
    )
}

/// Microsoft Schannel / CryptoAPI as used by Windows services and
/// non-browser clients.
pub fn schannel() -> Family {
    Family::new(
        "MS CryptoAPI",
        Category::Library,
        vec![
            Era {
                versions: "WinXP/7",
                from: Date::ymd(2009, 10, 22),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    mix(&[], 8, 2, 1, 1, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::STATUS_REQUEST,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                    ],
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
            Era {
                versions: "Win8.1",
                from: Date::ymd(2013, 10, 17),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(&[0xc02b, 0xc02c], 10, 2, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::STATUS_REQUEST,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                    ],
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
            Era {
                versions: "Win10",
                from: Date::ymd(2015, 7, 29),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(
                        &[0xc02b, 0xc02c, 0xc02f, 0xc030, 0x009e, 0x009f],
                        8,
                        0,
                        1,
                        0,
                        Rc4Placement::Mid,
                    ),
                    vec![
                        xt::SERVER_NAME,
                        xt::STATUS_REQUEST,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::ALPN,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    vec![
                        NamedGroup::SECP256R1,
                        NamedGroup::SECP384R1,
                        NamedGroup::X25519,
                    ],
                ),
            },
        ],
    )
}

/// Oracle Java JSSE. Java 6/7 clients capped at TLS 1.0 by default and
/// carried export suites deep into the 2010s — a major Figure 7 source.
pub fn java() -> Family {
    Family::new(
        "Java JSSE",
        Category::Library,
        vec![
            Era {
                versions: "6",
                from: Date::ymd(2006, 12, 11),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    with_extras(
                        mix_no_ec(&[], 8, 2, 2, 1, Rc4Placement::Mid),
                        &EXPORT_POOL[..4],
                    ),
                    vec![],
                    vec![],
                ),
            },
            Era {
                versions: "7",
                from: Date::ymd(2011, 7, 28),
                tls: cfg(
                    ProtocolVersion::Tls10,
                    with_extras(mix(&[], 12, 2, 2, 1, Rc4Placement::Mid), &EXPORT_POOL[..2]),
                    vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            Era {
                versions: "8",
                from: Date::ymd(2014, 3, 18),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 12, 2, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
            Era {
                versions: "8u161+",
                from: Date::ymd(2018, 1, 16),
                tls: cfg(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 10, 0, 1, 0, Rc4Placement::Mid),
                    vec![
                        xt::SERVER_NAME,
                        xt::SUPPORTED_GROUPS,
                        xt::EC_POINT_FORMATS,
                        xt::SIGNATURE_ALGORITHMS,
                        xt::EXTENDED_MASTER_SECRET,
                    ],
                    OPENSSL_CURVES.to_vec(),
                ),
            },
        ],
    )
}

/// All library families.
pub fn all_libraries() -> Vec<Family> {
    vec![
        openssl(),
        android(),
        apple_securetransport(),
        schannel(),
        java(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::CipherSuite;

    fn era<'a>(f: &'a Family, v: &str) -> &'a Era {
        f.eras
            .iter()
            .find(|e| e.versions == v)
            .unwrap_or_else(|| panic!("{} era {v} missing", f.name))
    }

    #[test]
    fn legacy_stacks_advertise_export() {
        for (fam, v) in [
            (openssl(), "0.9.8"),
            (android(), "2.3"),
            (java(), "6"),
            (java(), "7"),
        ] {
            assert!(
                era(&fam, v).tls.count_ciphers(|c| c.is_export()) > 0,
                "{} {v} should offer export suites",
                fam.name
            );
        }
        // Modern stacks never do.
        for (fam, v) in [(openssl(), "1.1.0"), (android(), "7-8"), (java(), "8")] {
            assert_eq!(era(&fam, v).tls.count_ciphers(|c| c.is_export()), 0);
        }
    }

    #[test]
    fn heartbeat_lives_in_openssl_101_and_102_only() {
        let o = openssl();
        use tlscope_wire::exts::ext_type;
        let has_hb = |v: &str| era(&o, v).tls.extensions.contains(&ext_type::HEARTBEAT);
        assert!(!has_hb("0.9.8"));
        assert!(!has_hb("1.0.0"));
        assert!(has_hb("1.0.1"));
        assert!(has_hb("1.0.2"));
        assert!(!has_hb("1.1.0"));
        assert!(!has_hb("1.1.1-pre"));
    }

    #[test]
    fn android_23_is_the_canonical_laggard() {
        let a = android();
        let e = era(&a, "2.3");
        assert!(!e.tls.supports_version(ProtocolVersion::Tls11));
        assert!(!e.tls.offers_aead());
        // RC4 first in its preference order.
        assert!(e.tls.ciphers[0].is_rc4());
        // No ECDHE at all.
        assert_eq!(
            e.tls
                .count_ciphers(|c| matches!(c.kx(), Some(tlscope_wire::Kx::Ecdhe))),
            0
        );
    }

    #[test]
    fn ios_supported_tls12_early() {
        let st = apple_securetransport();
        assert!(era(&st, "iOS 5-6")
            .tls
            .supports_version(ProtocolVersion::Tls12));
    }

    #[test]
    fn openssl_111_advertises_tls13_draft() {
        let o = openssl();
        let hello = era(&o, "1.1.1-pre")
            .tls
            .build_hello(None, &crate::spec::HelloEntropy::from_seed(5));
        assert!(hello.offers_tls13());
    }

    #[test]
    fn library_fingerprints_distinct() {
        let mut seen = std::collections::HashMap::new();
        for f in all_libraries() {
            for e in &f.eras {
                let fp = e.tls.fingerprint();
                if let Some(prev) = seen.insert(fp, (f.name, e.versions)) {
                    panic!(
                        "fingerprint collision: {} {} vs {} {}",
                        prev.0, prev.1, f.name, e.versions
                    );
                }
            }
        }
    }

    #[test]
    fn extension_free_hellos_stay_extension_free() {
        let o = openssl();
        let hello = era(&o, "0.9.8")
            .tls
            .build_hello(None, &crate::spec::HelloEntropy::from_seed(1));
        assert!(hello.extensions.is_none());
        // And they roundtrip through the wire.
        let parsed =
            tlscope_wire::ClientHello::parse_handshake(&hello.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, hello);
    }

    #[test]
    fn chacha_old_vs_new_code_points() {
        // Android 5 uses the pre-standard points, Android 7 the RFC ones.
        let a = android();
        let has = |v: &str, id: u16| era(&a, v).tls.ciphers.contains(&CipherSuite(id));
        assert!(has("5.0-5.1", 0xcc13));
        assert!(!has("5.0-5.1", 0xcca8));
        assert!(has("7-8", 0xcca8));
        assert!(!has("7-8", 0xcc13));
    }
}
