//! Client families: a named piece of software with a timeline of
//! configuration eras.
//!
//! An *era* is a maximal version range over which the TLS configuration
//! (and therefore the fingerprint) was stable. The browser tables of the
//! paper (Tables 3–6) are exactly era boundaries: each row is the date a
//! browser's cipher list or version support changed.

use tlscope_chron::Date;
use tlscope_fingerprint::Category;

use crate::spec::{ClientSpec, TlsConfig};

/// One configuration era of a client family.
#[derive(Debug, Clone)]
pub struct Era {
    /// Version range label ("27-32").
    pub versions: &'static str,
    /// First shipping date of this configuration.
    pub from: Date,
    /// The configuration.
    pub tls: TlsConfig,
}

/// A named client with a chronological list of eras.
#[derive(Debug, Clone)]
pub struct Family {
    /// Software name as it appears in the fingerprint database.
    pub name: &'static str,
    /// Fingerprint-database category.
    pub category: Category,
    /// Eras in ascending `from` order.
    pub eras: Vec<Era>,
    /// True when the catalog knows what this is. Unlabelled families are
    /// emitted in traffic but never inserted in the fingerprint database
    /// — they model the ~30 % of connections the paper could not
    /// attribute (§4, Table 2).
    pub labelled: bool,
}

impl Family {
    /// Construct a labelled family, asserting chronological era order.
    pub fn new(name: &'static str, category: Category, eras: Vec<Era>) -> Self {
        Self::build(name, category, eras, true)
    }

    /// Construct an *unlabelled* family: present on the wire, absent
    /// from the fingerprint database.
    pub fn unlabelled(name: &'static str, category: Category, eras: Vec<Era>) -> Self {
        Self::build(name, category, eras, false)
    }

    fn build(name: &'static str, category: Category, eras: Vec<Era>, labelled: bool) -> Self {
        assert!(!eras.is_empty(), "{name}: family needs at least one era");
        for w in eras.windows(2) {
            assert!(
                w[0].from < w[1].from,
                "{name}: eras out of order at {}",
                w[1].versions
            );
        }
        Family {
            name,
            category,
            eras,
            labelled,
        }
    }

    /// Index of the era current at `date` (the newest era released on or
    /// before it); `None` before the first release.
    pub fn era_index_at(&self, date: Date) -> Option<usize> {
        let mut current = None;
        for (i, era) in self.eras.iter().enumerate() {
            if era.from <= date {
                current = Some(i);
            } else {
                break;
            }
        }
        current
    }

    /// The era current at `date`.
    pub fn era_at(&self, date: Date) -> Option<&Era> {
        self.era_index_at(date).map(|i| &self.eras[i])
    }

    /// All eras as labelled client specs (for fingerprint-database
    /// construction).
    pub fn specs(&self) -> Vec<ClientSpec> {
        self.eras
            .iter()
            .map(|e| ClientSpec {
                name: self.name,
                category: self.category,
                versions: e.versions,
                released: e.from,
                tls: e.tls.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pools::{mix, Rc4Placement};
    use tlscope_wire::ProtocolVersion;

    fn cfg() -> TlsConfig {
        TlsConfig {
            legacy_version: ProtocolVersion::Tls10,
            supported_versions: vec![],
            min_version: ProtocolVersion::Ssl3,
            ciphers: mix(&[], 5, 2, 1, 0, Rc4Placement::Mid),
            extensions: vec![],
            curves: vec![],
            point_formats: vec![],
            compression: vec![0],
            grease: false,
            heartbeat_mode: 1,
        }
    }

    fn family() -> Family {
        Family::new(
            "TestWare",
            Category::DevTool,
            vec![
                Era {
                    versions: "1",
                    from: Date::ymd(2012, 1, 1),
                    tls: cfg(),
                },
                Era {
                    versions: "2",
                    from: Date::ymd(2014, 6, 1),
                    tls: cfg(),
                },
            ],
        )
    }

    #[test]
    fn era_selection() {
        let f = family();
        assert!(f.era_at(Date::ymd(2011, 12, 31)).is_none());
        assert_eq!(f.era_at(Date::ymd(2012, 1, 1)).unwrap().versions, "1");
        assert_eq!(f.era_at(Date::ymd(2014, 5, 31)).unwrap().versions, "1");
        assert_eq!(f.era_at(Date::ymd(2014, 6, 1)).unwrap().versions, "2");
        assert_eq!(f.era_at(Date::ymd(2020, 1, 1)).unwrap().versions, "2");
    }

    #[test]
    fn specs_carry_labels() {
        let specs = family().specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label().name, "TestWare");
        assert_eq!(specs[1].versions, "2");
    }

    #[test]
    #[should_panic(expected = "eras out of order")]
    fn rejects_unordered_eras() {
        let mut eras = family().eras;
        eras.swap(0, 1);
        Family::new("Bad", Category::DevTool, eras);
    }
}
