//! Version-adoption model: how a family's installed base migrates
//! between eras.
//!
//! The paper repeatedly observes that configuration changes take effect
//! on the wire *gradually*: "a residual number of clients continued to
//! advertise RC4 for some time after browsers officially dropped it,
//! indicating a user population that does not quickly update" (§5.3),
//! and §4.1 finds fingerprints persisting for 1,200+ days. The model
//! here produces that shape:
//!
//! * After a new era ships, users migrate along a linear ramp lasting
//!   `ramp_days` (fast for auto-updating browsers, slow for OS stacks
//!   and embedded devices).
//! * A `laggard` fraction never rides the ramp; it decays exponentially
//!   with half-life `laggard_halflife_days` (abandoned software, frozen
//!   images, devices without updates — the long tail of §7.2).

use tlscope_chron::Date;

use crate::family::Family;

/// Migration-speed parameters for one family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdoptionModel {
    /// Days for the bulk of users to move to a new era.
    pub ramp_days: f64,
    /// Fraction of an era's users that do not migrate on the ramp.
    pub laggard: f64,
    /// Half-life (days) of the laggard population.
    pub laggard_halflife_days: f64,
}

impl AdoptionModel {
    /// Auto-updating browser: ~10 weeks to move, 4 % laggards with a
    /// 1.5-year half-life.
    pub fn browser() -> Self {
        AdoptionModel {
            ramp_days: 70.0,
            laggard: 0.04,
            laggard_halflife_days: 550.0,
        }
    }

    /// OS-coupled library: ~1.5 years to move, 15 % laggards with a
    /// 2.5-year half-life (Android/old OpenSSL territory).
    pub fn os_library() -> Self {
        AdoptionModel {
            ramp_days: 540.0,
            laggard: 0.15,
            laggard_halflife_days: 900.0,
        }
    }

    /// Manually-updated application: ~7 months, 10 % laggards.
    pub fn application() -> Self {
        AdoptionModel {
            ramp_days: 210.0,
            laggard: 0.10,
            laggard_halflife_days: 700.0,
        }
    }

    /// Raw (unnormalised) weight of an era at `date`, given when the
    /// *next* era shipped (`superseded`, `None` if still current).
    fn weight(&self, superseded: Option<i64>) -> f64 {
        match superseded {
            None => 1.0,
            Some(age) if age <= 0 => 1.0,
            Some(age) => {
                let age = age as f64;
                let ramp = (1.0 - age / self.ramp_days).max(0.0) * (1.0 - self.laggard);
                let tail = self.laggard * 0.5f64.powf(age / self.laggard_halflife_days);
                ramp + tail
            }
        }
    }

    /// Distribution over a family's eras at `date`.
    ///
    /// Returns one weight per era, summing to 1 (empty if the family has
    /// not shipped anything yet). Chained supersession compounds: an era
    /// two releases behind carries its laggard tail squared-ish, which
    /// is what produces multi-year-old fingerprints in the traffic.
    pub fn era_shares(&self, family: &Family, date: Date) -> Vec<f64> {
        let mut weights = Vec::with_capacity(family.eras.len());
        self.era_shares_into(family, date, &mut weights);
        weights
    }

    /// [`AdoptionModel::era_shares`], written into a reusable buffer —
    /// the generator hot path calls this once per connection.
    pub fn era_shares_into(&self, family: &Family, date: Date, out: &mut Vec<f64>) {
        out.clear();
        out.resize(family.eras.len(), 0.0);
        let Some(current) = family.era_index_at(date) else {
            return;
        };
        for (i, w) in out.iter_mut().enumerate().take(current + 1) {
            let superseded = if i == current {
                None
            } else {
                Some(date - family.eras[i + 1].from)
            };
            *w = self.weight(superseded);
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for w in out.iter_mut() {
                *w /= total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::browsers::chrome;

    #[test]
    fn before_first_release_all_zero() {
        let m = AdoptionModel::browser();
        let shares = m.era_shares(&chrome(), Date::ymd(2010, 1, 1));
        assert!(shares.iter().all(|s| *s == 0.0));
    }

    #[test]
    fn shares_sum_to_one_once_shipped() {
        let m = AdoptionModel::browser();
        for date in [
            Date::ymd(2012, 2, 1),
            Date::ymd(2014, 6, 1),
            Date::ymd(2016, 1, 1),
            Date::ymd(2018, 4, 1),
        ] {
            let shares = m.era_shares(&chrome(), date);
            let sum: f64 = shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum} at {date}");
        }
    }

    #[test]
    fn newest_era_dominates_after_ramp() {
        let m = AdoptionModel::browser();
        let fam = chrome();
        // Mid-2016: Chrome 49-55 (2016-03-02) is current and past ramp.
        let date = Date::ymd(2016, 8, 1);
        let shares = m.era_shares(&fam, date);
        let current = fam.era_index_at(date).unwrap();
        assert!(shares[current] > 0.85, "current share {}", shares[current]);
    }

    #[test]
    fn laggards_linger_for_years() {
        let m = AdoptionModel::browser();
        let fam = chrome();
        // In early 2018, the RC4-offering Chrome ≤ 42 eras should still
        // carry a small but nonzero share (the paper's residual RC4
        // advertisers).
        let shares = m.era_shares(&fam, Date::ymd(2018, 1, 1));
        let rc4_share: f64 = fam
            .eras
            .iter()
            .zip(&shares)
            .filter(|(e, _)| e.tls.rc4_count() > 0)
            .map(|(_, s)| *s)
            .sum();
        assert!(rc4_share > 0.001, "rc4 share {rc4_share}");
        assert!(rc4_share < 0.10, "rc4 share {rc4_share}");
    }

    #[test]
    fn ramp_is_monotone_migration() {
        let m = AdoptionModel::browser();
        let fam = chrome();
        // Chrome 43 ships 2015-05-19; era "41-42" share should fall
        // monotonically across the ramp.
        let mut prev = f64::MAX;
        let idx = fam.eras.iter().position(|e| e.versions == "41-42").unwrap();
        for days in [1i64, 20, 40, 60, 90, 200] {
            let date = Date::ymd(2015, 5, 19).add_days(days);
            let s = m.era_shares(&fam, date)[idx];
            assert!(s <= prev + 1e-12, "share grew at +{days}d");
            prev = s;
        }
    }

    #[test]
    fn os_library_migrates_slower_than_browser() {
        use crate::libraries::android;
        let fam = android();
        // One year after Android 6.0 (2015-10-05), the 5.x era keeps a
        // larger share under the OS model than a browser model would.
        let date = Date::ymd(2016, 10, 5);
        let idx = fam
            .eras
            .iter()
            .position(|e| e.versions == "5.0-5.1")
            .unwrap();
        let slow = AdoptionModel::os_library().era_shares(&fam, date)[idx];
        let fast = AdoptionModel::browser().era_shares(&fam, date)[idx];
        assert!(slow > fast, "slow {slow} fast {fast}");
        assert!(slow > 0.05);
    }
}
