//! Historical browser TLS configurations.
//!
//! Each browser's era list transcribes the paper's Tables 3 (CBC suite
//! counts), 4 (RC4 counts), 5 (3DES counts), and 6 (protocol version
//! support) into concrete configurations. The unit tests at the bottom
//! assert every table row against the constructed data — the tables are
//! executable here.

use tlscope_chron::Date;
use tlscope_fingerprint::Category;
use tlscope_wire::exts::ext_type as xt;
use tlscope_wire::{NamedGroup, ProtocolVersion};

use crate::family::{Era, Family};
use crate::pools::{aead, mix, Rc4Placement};
use crate::spec::TlsConfig;

const NIST_CURVES: [NamedGroup; 3] = [
    NamedGroup::SECP256R1,
    NamedGroup::SECP384R1,
    NamedGroup::SECP521R1,
];
const MODERN_CURVES: [NamedGroup; 3] = [
    NamedGroup::X25519,
    NamedGroup::SECP256R1,
    NamedGroup::SECP384R1,
];

fn base_config(
    version: ProtocolVersion,
    ciphers: Vec<tlscope_wire::CipherSuite>,
    extensions: Vec<u16>,
    curves: Vec<NamedGroup>,
) -> TlsConfig {
    TlsConfig {
        legacy_version: version,
        supported_versions: vec![],
        min_version: ProtocolVersion::Ssl3,
        ciphers,
        extensions,
        curves,
        point_formats: vec![0],
        compression: vec![0],
        grease: false,
        heartbeat_mode: 1,
    }
}

/// Chrome's era list.
pub fn chrome() -> Family {
    let old_exts = vec![
        xt::RENEGOTIATION_INFO,
        xt::SERVER_NAME,
        xt::SESSION_TICKET,
        xt::NPN,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
    ];
    let mid_exts = vec![
        xt::RENEGOTIATION_INFO,
        xt::SERVER_NAME,
        xt::SESSION_TICKET,
        xt::NPN,
        xt::STATUS_REQUEST,
        xt::SIGNATURE_ALGORITHMS,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::CHANNEL_ID,
    ];
    let late_exts = vec![
        xt::RENEGOTIATION_INFO,
        xt::SERVER_NAME,
        xt::EXTENDED_MASTER_SECRET,
        xt::SESSION_TICKET,
        xt::SIGNATURE_ALGORITHMS,
        xt::STATUS_REQUEST,
        xt::SCT,
        xt::ALPN,
        xt::CHANNEL_ID,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
    ];
    let mut tls13_exts = late_exts.clone();
    tls13_exts.push(xt::SUPPORTED_VERSIONS);
    tls13_exts.push(xt::KEY_SHARE);

    let mut eras = vec![
        Era {
            versions: "14-21",
            from: Date::ymd(2011, 6, 1),
            tls: base_config(
                ProtocolVersion::Tls10,
                mix(&[], 19, 6, 8, 2, Rc4Placement::Mid),
                old_exts.clone(),
                NIST_CURVES.to_vec(),
            ),
        },
        // Table 6: Chrome 22 (25/09/2012) adds TLS 1.1.
        Era {
            versions: "22-28",
            from: Date::ymd(2012, 9, 25),
            tls: base_config(
                ProtocolVersion::Tls11,
                mix(&[], 19, 6, 8, 2, Rc4Placement::Mid),
                mid_exts.clone(),
                NIST_CURVES.to_vec(),
            ),
        },
        // Tables 3/4/5/6: Chrome 29 (20/08/2013): TLS 1.2; CBC 29→16,
        // RC4 6→4, 3DES 8→1.
        Era {
            versions: "29-30",
            from: Date::ymd(2013, 8, 20),
            tls: base_config(
                ProtocolVersion::Tls12,
                mix(aead::GEN1, 15, 4, 1, 0, Rc4Placement::Mid),
                mid_exts.clone(),
                NIST_CURVES.to_vec(),
            ),
        },
        // Table 3: Chrome 31 (12/11/2013): CBC → 10.
        Era {
            versions: "31-32",
            from: Date::ymd(2013, 11, 12),
            tls: base_config(
                ProtocolVersion::Tls12,
                mix(aead::GEN2, 9, 4, 1, 0, Rc4Placement::Mid),
                mid_exts.clone(),
                NIST_CURVES.to_vec(),
            ),
        },
        // Chrome 33 (2014): pre-standard ChaCha20 code points.
        Era {
            versions: "33-40",
            from: Date::ymd(2014, 2, 20),
            tls: base_config(
                ProtocolVersion::Tls12,
                mix(aead::GEN2_CHACHA_OLD, 9, 4, 1, 0, Rc4Placement::Mid),
                late_exts.clone(),
                vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
            ),
        },
        // Table 3: Chrome 41 (03/03/2015): CBC → 9.
        Era {
            versions: "41-42",
            from: Date::ymd(2015, 3, 3),
            tls: base_config(
                ProtocolVersion::Tls12,
                mix(aead::GEN2_CHACHA_OLD, 8, 4, 1, 0, Rc4Placement::Mid),
                late_exts.clone(),
                vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
            ),
        },
        // Table 4: Chrome 43 (19/05/2015): RC4 removed completely.
        Era {
            versions: "43-48",
            from: Date::ymd(2015, 5, 19),
            tls: base_config(
                ProtocolVersion::Tls12,
                mix(aead::GEN2_CHACHA_OLD, 8, 0, 1, 0, Rc4Placement::Mid),
                late_exts.clone(),
                vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
            ),
        },
        // Table 3: Chrome 49 (02/03/2016): CBC → 7; RFC 7905 ChaCha20;
        // X25519 first (Chrome 50 era).
        Era {
            versions: "49-55",
            from: Date::ymd(2016, 3, 2),
            tls: base_config(
                ProtocolVersion::Tls12,
                mix(aead::GEN3, 6, 0, 1, 0, Rc4Placement::Mid),
                late_exts.clone(),
                MODERN_CURVES.to_vec(),
            ),
        },
    ];
    // Table 3: Chrome 56 (25/01/2017): CBC → 5; GREASE ships.
    let mut c56 = base_config(
        ProtocolVersion::Tls12,
        mix(aead::GEN3, 4, 0, 1, 0, Rc4Placement::Mid),
        late_exts.clone(),
        MODERN_CURVES.to_vec(),
    );
    c56.grease = true;
    eras.push(Era {
        versions: "56-64",
        from: Date::ymd(2017, 1, 25),
        tls: c56,
    });
    // §6.4: spring 2018 rollout advertising the experimental Google
    // TLS 1.3 variant 0x7e02 (82.3 % of supported_versions sightings).
    let mut c65 = base_config(
        ProtocolVersion::Tls12,
        {
            let mut all: Vec<tlscope_wire::CipherSuite> = aead::TLS13
                .iter()
                .copied()
                .map(tlscope_wire::CipherSuite)
                .collect();
            all.append(&mut mix(aead::GEN3, 4, 0, 1, 0, Rc4Placement::Mid));
            all
        },
        tls13_exts,
        MODERN_CURVES.to_vec(),
    );
    c65.grease = true;
    c65.supported_versions = vec![
        ProtocolVersion::Tls13Experiment(2),
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls10,
    ];
    eras.push(Era {
        versions: "65-66",
        from: Date::ymd(2018, 3, 6),
        tls: c65,
    });
    Family::new("Chrome", Category::Browser, eras)
}

/// Firefox's era list.
pub fn firefox() -> Family {
    let old_exts = vec![
        xt::SERVER_NAME,
        xt::RENEGOTIATION_INFO,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SESSION_TICKET,
        xt::NPN,
    ];
    let mid_exts = vec![
        xt::SERVER_NAME,
        xt::RENEGOTIATION_INFO,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SESSION_TICKET,
        xt::NPN,
        xt::STATUS_REQUEST,
        xt::SIGNATURE_ALGORITHMS,
    ];
    let late_exts = vec![
        xt::SERVER_NAME,
        xt::EXTENDED_MASTER_SECRET,
        xt::RENEGOTIATION_INFO,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SESSION_TICKET,
        xt::ALPN,
        xt::STATUS_REQUEST,
        xt::SIGNATURE_ALGORITHMS,
    ];
    let ff_curves = vec![
        NamedGroup::X25519,
        NamedGroup::SECP256R1,
        NamedGroup::SECP384R1,
        NamedGroup::SECP521R1,
        NamedGroup(256), // ffdhe2048
        NamedGroup(257), // ffdhe3072
    ];
    let mut ff60_exts = late_exts.clone();
    ff60_exts.push(xt::SUPPORTED_VERSIONS);
    ff60_exts.push(xt::KEY_SHARE);

    let mut ff60 = base_config(
        ProtocolVersion::Tls12,
        {
            let mut all: Vec<tlscope_wire::CipherSuite> = aead::TLS13
                .iter()
                .copied()
                .map(tlscope_wire::CipherSuite)
                .collect();
            all.append(&mut mix(aead::GEN3, 4, 0, 1, 0, Rc4Placement::Mid));
            all
        },
        ff60_exts,
        ff_curves.clone(),
    );
    // Table 6: Firefox 60 (16/05/2018) supports TLS 1.3 (draft 28).
    ff60.supported_versions = vec![
        ProtocolVersion::Tls13Draft(28),
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls10,
    ];

    Family::new(
        "Firefox",
        Category::Browser,
        vec![
            Era {
                versions: "4-26",
                from: Date::ymd(2011, 3, 22),
                tls: base_config(
                    ProtocolVersion::Tls10,
                    mix(&[], 19, 6, 8, 2, Rc4Placement::Mid),
                    old_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/5/6: Firefox 27 (04/02/2014): TLS 1.1/1.2;
            // CBC 29→17; 3DES 8→3. Table 4: RC4 6→4.
            Era {
                versions: "27-32",
                from: Date::ymd(2014, 2, 4),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 12, 4, 3, 2, Rc4Placement::Mid),
                    mid_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/5: Firefox 33 (14/10/2014): CBC → 10; 3DES → 1.
            Era {
                versions: "33-35",
                from: Date::ymd(2014, 10, 14),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 9, 4, 1, 0, Rc4Placement::Mid),
                    mid_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 4: Firefox 36 (24/02/2015): RC4 fallback-only — the
            // primary hello no longer offers it. Table 3: CBC → 9.
            Era {
                versions: "36-43",
                from: Date::ymd(2015, 2, 24),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 8, 0, 1, 0, Rc4Placement::Mid),
                    mid_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 4: Firefox 44 (26/01/2016): RC4 removed completely;
            // ChaCha20 (RFC 7905) and x25519 in the NSS of this era.
            Era {
                versions: "44-59",
                from: Date::ymd(2016, 1, 26),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN3, 8, 0, 1, 0, Rc4Placement::Mid),
                    late_exts,
                    ff_curves,
                ),
            },
            // Table 3: Firefox 60 (beta config 14/03/2018, default
            // rollout from May 2018 — §6.4). Dated at the moment the
            // population actually starts carrying it.
            Era {
                versions: "60+",
                from: Date::ymd(2018, 4, 14),
                tls: ff60,
            },
        ],
    )
}

/// The 2017 Chrome field experiment: a subset of Chrome 56-62 installs
/// advertising the Google experimental TLS 1.3 variant 0x7e02 — the
/// value §6.4 sees in 82.3 % of supported_versions sightings.
pub fn chrome_tls13_experiment() -> Family {
    let mut cfg = base_config(
        ProtocolVersion::Tls12,
        {
            let mut all: Vec<tlscope_wire::CipherSuite> = aead::TLS13
                .iter()
                .copied()
                .map(tlscope_wire::CipherSuite)
                .collect();
            all.append(&mut mix(aead::GEN3, 4, 0, 1, 0, Rc4Placement::Mid));
            all
        },
        vec![
            xt::RENEGOTIATION_INFO,
            xt::SERVER_NAME,
            xt::EXTENDED_MASTER_SECRET,
            xt::SESSION_TICKET,
            xt::SIGNATURE_ALGORITHMS,
            xt::STATUS_REQUEST,
            xt::SCT,
            xt::ALPN,
            xt::CHANNEL_ID,
            xt::SUPPORTED_GROUPS,
            xt::EC_POINT_FORMATS,
            xt::SUPPORTED_VERSIONS,
            xt::KEY_SHARE_DRAFT,
        ],
        MODERN_CURVES.to_vec(),
    );
    cfg.grease = true;
    cfg.supported_versions = vec![
        ProtocolVersion::Tls13Experiment(2),
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls10,
    ];
    Family::new(
        "Chrome (TLS 1.3 experiment)",
        Category::Browser,
        vec![Era {
            versions: "56-62/exp",
            from: Date::ymd(2017, 2, 1),
            tls: cfg,
        }],
    )
}

/// A small cohort of Firefox 52–59 users who flipped the TLS 1.3 pref
/// (§6.4: draft 18 was the most common *official* draft at 13.4 % of
/// supported_versions sightings).
pub fn firefox_tls13_flag() -> Family {
    let mut cfg = base_config(
        ProtocolVersion::Tls12,
        {
            let mut all: Vec<tlscope_wire::CipherSuite> = aead::TLS13
                .iter()
                .copied()
                .map(tlscope_wire::CipherSuite)
                .collect();
            all.append(&mut mix(aead::GEN3, 8, 0, 1, 0, Rc4Placement::Mid));
            all
        },
        vec![
            xt::SERVER_NAME,
            xt::EXTENDED_MASTER_SECRET,
            xt::RENEGOTIATION_INFO,
            xt::SUPPORTED_GROUPS,
            xt::EC_POINT_FORMATS,
            xt::SESSION_TICKET,
            xt::ALPN,
            xt::STATUS_REQUEST,
            xt::SIGNATURE_ALGORITHMS,
            xt::SUPPORTED_VERSIONS,
            xt::KEY_SHARE_DRAFT,
        ],
        vec![
            NamedGroup::X25519,
            NamedGroup::SECP256R1,
            NamedGroup::SECP384R1,
        ],
    );
    cfg.supported_versions = vec![
        ProtocolVersion::Tls13Draft(18),
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls10,
    ];
    Family::new(
        "Firefox (TLS 1.3 flag)",
        Category::Browser,
        vec![Era {
            versions: "52-59/tls13-flag",
            from: Date::ymd(2017, 3, 7),
            tls: cfg,
        }],
    )
}

/// Opera's era list (Presto, then the Chromium fork).
pub fn opera() -> Family {
    let presto_exts = vec![
        xt::SERVER_NAME,
        xt::RENEGOTIATION_INFO,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
    ];
    let blink_exts = vec![
        xt::RENEGOTIATION_INFO,
        xt::SERVER_NAME,
        xt::SESSION_TICKET,
        xt::NPN,
        xt::STATUS_REQUEST,
        xt::SIGNATURE_ALGORITHMS,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
    ];
    let late_exts = vec![
        xt::RENEGOTIATION_INFO,
        xt::SERVER_NAME,
        xt::EXTENDED_MASTER_SECRET,
        xt::SESSION_TICKET,
        xt::SIGNATURE_ALGORITHMS,
        xt::STATUS_REQUEST,
        xt::SCT,
        xt::ALPN,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
    ];
    let mut o43 = base_config(
        ProtocolVersion::Tls12,
        mix(aead::GEN3, 4, 0, 1, 0, Rc4Placement::Mid),
        late_exts.clone(),
        MODERN_CURVES.to_vec(),
    );
    o43.grease = true;
    Family::new(
        "Opera",
        Category::Browser,
        vec![
            Era {
                versions: "11-12 (Presto)",
                from: Date::ymd(2011, 6, 28),
                tls: base_config(
                    ProtocolVersion::Tls10,
                    mix(&[], 17, 2, 6, 2, Rc4Placement::Mid),
                    presto_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/4: Opera 15 (02/07/2013), first Chromium build:
            // CBC 25→29, RC4 2→6.
            Era {
                versions: "15",
                from: Date::ymd(2013, 7, 2),
                tls: base_config(
                    ProtocolVersion::Tls10,
                    mix(&[], 19, 6, 8, 2, Rc4Placement::Mid),
                    blink_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/4/5/6: Opera 16 (27/08/2013): TLS 1.1; CBC → 16;
            // RC4 → 4; 3DES 8 → 1.
            Era {
                versions: "16-17",
                from: Date::ymd(2013, 8, 27),
                tls: base_config(
                    ProtocolVersion::Tls11,
                    mix(aead::GEN1, 15, 4, 1, 0, Rc4Placement::Mid),
                    blink_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 3: Opera 18 (19/11/2013): CBC → 10 (and TLS 1.2 with
            // its Chromium 31 base).
            Era {
                versions: "18-27",
                from: Date::ymd(2013, 11, 19),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 9, 4, 1, 0, Rc4Placement::Mid),
                    blink_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 3: Opera 28 (10/03/2015): CBC → 9.
            Era {
                versions: "28-29",
                from: Date::ymd(2015, 3, 10),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2_CHACHA_OLD, 8, 4, 1, 0, Rc4Placement::Mid),
                    late_exts.clone(),
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
            // Tables 3/4: Opera 30 (09/06/2015): CBC → 7; RC4 removed.
            Era {
                versions: "30-42",
                from: Date::ymd(2015, 6, 9),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2_CHACHA_OLD, 6, 0, 1, 0, Rc4Placement::Mid),
                    late_exts,
                    vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
                ),
            },
            // Table 3: Opera 43 (07/02/2017): CBC → 5.
            Era {
                versions: "43+",
                from: Date::ymd(2017, 2, 7),
                tls: o43,
            },
        ],
    )
}

/// Safari's era list (desktop SecureTransport).
pub fn safari() -> Family {
    let old_exts = vec![xt::SERVER_NAME, xt::SUPPORTED_GROUPS, xt::EC_POINT_FORMATS];
    let mid_exts = vec![
        xt::SERVER_NAME,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SIGNATURE_ALGORITHMS,
    ];
    let late_exts = vec![
        xt::SERVER_NAME,
        xt::EXTENDED_MASTER_SECRET,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SIGNATURE_ALGORITHMS,
        xt::ALPN,
        xt::STATUS_REQUEST,
        xt::SCT,
    ];
    Family::new(
        "Safari",
        Category::Browser,
        vec![
            Era {
                versions: "5-5.1",
                from: Date::ymd(2010, 6, 7),
                tls: base_config(
                    ProtocolVersion::Tls10,
                    mix(&[], 19, 7, 7, 2, Rc4Placement::Head),
                    old_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 4: Safari 6 (25/02/2012): RC4 7 → 6.
            Era {
                versions: "6-6.2",
                from: Date::ymd(2012, 2, 25),
                tls: base_config(
                    ProtocolVersion::Tls10,
                    mix(&[], 19, 6, 7, 2, Rc4Placement::Head),
                    old_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 6: Safari 7 (22/10/2013): TLS 1.1/1.2.
            Era {
                versions: "7.0",
                from: Date::ymd(2013, 10, 22),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(&[], 19, 6, 7, 2, Rc4Placement::Head),
                    mid_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/5: Safari 7.1/6.2 (18/09/2014): CBC 28 → 30,
            // 3DES 7 → 6.
            Era {
                versions: "7.1-8",
                from: Date::ymd(2014, 9, 18),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(&[], 22, 6, 6, 2, Rc4Placement::Head),
                    mid_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/4/5/6: Safari 9 (30/09/2015): AES-GCM arrives;
            // RC4 → 4; CBC → 15; 3DES → 3; SSL 3 support removed.
            Era {
                versions: "9-10.0",
                from: Date::ymd(2015, 9, 30),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 10, 4, 3, 2, Rc4Placement::Mid),
                    late_exts.clone(),
                    NIST_CURVES.to_vec(),
                ),
            },
            // Tables 3/4: Safari 10.1 (2016/17): RC4 removed; CBC → 12.
            Era {
                versions: "10.1+",
                from: Date::ymd(2017, 7, 19),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(aead::GEN2, 9, 0, 3, 0, Rc4Placement::Mid),
                    late_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
        ],
    )
}

/// Internet Explorer / Edge era list (Schannel).
pub fn ie_edge() -> Family {
    let old_exts = vec![
        xt::SERVER_NAME,
        xt::STATUS_REQUEST,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
    ];
    let mid_exts = vec![
        xt::SERVER_NAME,
        xt::STATUS_REQUEST,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SIGNATURE_ALGORITHMS,
        xt::SESSION_TICKET,
        xt::RENEGOTIATION_INFO,
    ];
    let late_exts = vec![
        xt::SERVER_NAME,
        xt::STATUS_REQUEST,
        xt::SUPPORTED_GROUPS,
        xt::EC_POINT_FORMATS,
        xt::SIGNATURE_ALGORITHMS,
        xt::SESSION_TICKET,
        xt::ALPN,
        xt::EXTENDED_MASTER_SECRET,
        xt::RENEGOTIATION_INFO,
    ];
    Family::new(
        "IE/Edge",
        Category::Browser,
        vec![
            Era {
                versions: "8-10",
                from: Date::ymd(2009, 3, 19),
                tls: base_config(
                    ProtocolVersion::Tls10,
                    mix(&[], 9, 2, 1, 1, Rc4Placement::Mid),
                    old_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 6: IE 11 (01/11/2013): TLS 1.1/1.2.
            Era {
                versions: "11-12",
                from: Date::ymd(2013, 11, 1),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(&[0xc02b, 0xc02c], 10, 2, 1, 0, Rc4Placement::Mid),
                    mid_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
            // Table 4: IE/Edge 13 (20/05/2015): all RC4 removed.
            Era {
                versions: "13+ (Edge)",
                from: Date::ymd(2015, 5, 20),
                tls: base_config(
                    ProtocolVersion::Tls12,
                    mix(
                        &[
                            0xc02b, 0xc02c, 0xc02f, 0xc030, 0x009e, 0x009f, 0x009c, 0x009d,
                        ],
                        8,
                        0,
                        1,
                        0,
                        Rc4Placement::Mid,
                    ),
                    late_exts,
                    NIST_CURVES.to_vec(),
                ),
            },
        ],
    )
}

/// All five browser families (plus the Firefox TLS 1.3 flag cohort).
pub fn all_browsers() -> Vec<Family> {
    vec![
        chrome(),
        chrome_tls13_experiment(),
        firefox(),
        firefox_tls13_flag(),
        opera(),
        safari(),
        ie_edge(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn era<'a>(f: &'a Family, v: &str) -> &'a Era {
        f.eras
            .iter()
            .find(|e| e.versions == v)
            .unwrap_or_else(|| panic!("{} era {v} missing", f.name))
    }

    #[test]
    fn table3_cbc_counts() {
        let ff = firefox();
        assert_eq!(era(&ff, "4-26").tls.cbc_count(), 29);
        assert_eq!(era(&ff, "27-32").tls.cbc_count(), 17);
        assert_eq!(era(&ff, "33-35").tls.cbc_count(), 10);
        assert_eq!(era(&ff, "36-43").tls.cbc_count(), 9);
        assert_eq!(era(&ff, "60+").tls.cbc_count(), 5);

        let ch = chrome();
        assert_eq!(era(&ch, "22-28").tls.cbc_count(), 29);
        assert_eq!(era(&ch, "29-30").tls.cbc_count(), 16);
        assert_eq!(era(&ch, "31-32").tls.cbc_count(), 10);
        assert_eq!(era(&ch, "41-42").tls.cbc_count(), 9);
        assert_eq!(era(&ch, "49-55").tls.cbc_count(), 7);
        assert_eq!(era(&ch, "56-64").tls.cbc_count(), 5);

        let op = opera();
        assert_eq!(era(&op, "11-12 (Presto)").tls.cbc_count(), 25);
        assert_eq!(era(&op, "15").tls.cbc_count(), 29);
        assert_eq!(era(&op, "16-17").tls.cbc_count(), 16);
        assert_eq!(era(&op, "18-27").tls.cbc_count(), 10);
        assert_eq!(era(&op, "28-29").tls.cbc_count(), 9);
        assert_eq!(era(&op, "30-42").tls.cbc_count(), 7);
        assert_eq!(era(&op, "43+").tls.cbc_count(), 5);

        let sa = safari();
        assert_eq!(era(&sa, "6-6.2").tls.cbc_count(), 28);
        assert_eq!(era(&sa, "7.1-8").tls.cbc_count(), 30);
        assert_eq!(era(&sa, "9-10.0").tls.cbc_count(), 15);
        assert_eq!(era(&sa, "10.1+").tls.cbc_count(), 12);
    }

    #[test]
    fn table4_rc4_counts() {
        let ff = firefox();
        assert_eq!(era(&ff, "4-26").tls.rc4_count(), 6);
        assert_eq!(era(&ff, "27-32").tls.rc4_count(), 4);
        assert_eq!(era(&ff, "36-43").tls.rc4_count(), 0); // fallback-only
        assert_eq!(era(&ff, "44-59").tls.rc4_count(), 0); // removed

        let ch = chrome();
        assert_eq!(era(&ch, "22-28").tls.rc4_count(), 6);
        assert_eq!(era(&ch, "29-30").tls.rc4_count(), 4);
        assert_eq!(era(&ch, "43-48").tls.rc4_count(), 0);

        let op = opera();
        assert_eq!(era(&op, "11-12 (Presto)").tls.rc4_count(), 2);
        assert_eq!(era(&op, "15").tls.rc4_count(), 6);
        assert_eq!(era(&op, "16-17").tls.rc4_count(), 4);
        assert_eq!(era(&op, "30-42").tls.rc4_count(), 0);

        let sa = safari();
        assert_eq!(era(&sa, "5-5.1").tls.rc4_count(), 7);
        assert_eq!(era(&sa, "6-6.2").tls.rc4_count(), 6);
        assert_eq!(era(&sa, "9-10.0").tls.rc4_count(), 4);
        assert_eq!(era(&sa, "10.1+").tls.rc4_count(), 0);

        let ie = ie_edge();
        assert_eq!(era(&ie, "11-12").tls.rc4_count(), 2);
        assert_eq!(era(&ie, "13+ (Edge)").tls.rc4_count(), 0);
    }

    #[test]
    fn table5_3des_counts() {
        let ff = firefox();
        assert_eq!(era(&ff, "4-26").tls.tdes_count(), 8);
        assert_eq!(era(&ff, "27-32").tls.tdes_count(), 3);
        assert_eq!(era(&ff, "33-35").tls.tdes_count(), 1);

        let ch = chrome();
        assert_eq!(era(&ch, "22-28").tls.tdes_count(), 8);
        assert_eq!(era(&ch, "29-30").tls.tdes_count(), 1);

        let op = opera();
        assert_eq!(era(&op, "15").tls.tdes_count(), 8);
        assert_eq!(era(&op, "16-17").tls.tdes_count(), 1);

        let sa = safari();
        assert_eq!(era(&sa, "7.0").tls.tdes_count(), 7);
        assert_eq!(era(&sa, "7.1-8").tls.tdes_count(), 6);
        assert_eq!(era(&sa, "9-10.0").tls.tdes_count(), 3);
    }

    #[test]
    fn table6_version_support() {
        use ProtocolVersion as V;
        let ch = chrome();
        assert!(!era(&ch, "14-21").tls.supports_version(V::Tls11));
        assert!(era(&ch, "22-28").tls.supports_version(V::Tls11));
        assert!(!era(&ch, "22-28").tls.supports_version(V::Tls12));
        assert!(era(&ch, "29-30").tls.supports_version(V::Tls12));
        assert!(era(&ch, "65-66").tls.supports_version(V::Tls13));

        let ff = firefox();
        assert!(!era(&ff, "4-26").tls.supports_version(V::Tls11));
        assert!(era(&ff, "27-32").tls.supports_version(V::Tls12));
        assert!(era(&ff, "60+").tls.supports_version(V::Tls13));

        let ie = ie_edge();
        assert!(!era(&ie, "8-10").tls.supports_version(V::Tls11));
        assert!(era(&ie, "11-12").tls.supports_version(V::Tls12));

        let op = opera();
        assert!(era(&op, "16-17").tls.supports_version(V::Tls11));
        assert!(!era(&op, "16-17").tls.supports_version(V::Tls12));
        assert!(era(&op, "18-27").tls.supports_version(V::Tls12));

        let sa = safari();
        assert!(!era(&sa, "6-6.2").tls.supports_version(V::Tls11));
        assert!(era(&sa, "7.0").tls.supports_version(V::Tls12));
    }

    #[test]
    fn browsers_never_offer_weak_families() {
        for f in all_browsers() {
            for e in &f.eras {
                assert_eq!(
                    e.tls.count_ciphers(|c| c.is_export()),
                    0,
                    "{} {} offers export",
                    f.name,
                    e.versions
                );
                assert_eq!(
                    e.tls.count_ciphers(|c| c.is_anon()),
                    0,
                    "{} {} offers anon",
                    f.name,
                    e.versions
                );
                assert_eq!(
                    e.tls.count_ciphers(|c| c.is_null_encryption()),
                    0,
                    "{} {} offers NULL",
                    f.name,
                    e.versions
                );
            }
        }
    }

    #[test]
    fn all_browser_eras_have_distinct_fingerprints() {
        let mut seen = std::collections::HashMap::new();
        for f in all_browsers() {
            for e in &f.eras {
                let fp = e.tls.fingerprint();
                if let Some(prev) = seen.insert(fp, (f.name, e.versions)) {
                    panic!(
                        "fingerprint collision: {} {} vs {} {}",
                        prev.0, prev.1, f.name, e.versions
                    );
                }
            }
        }
    }

    #[test]
    fn modern_eras_offer_aead_old_ones_dont() {
        let ch = chrome();
        assert!(!era(&ch, "22-28").tls.offers_aead());
        assert!(era(&ch, "29-30").tls.offers_aead());
        let sa = safari();
        assert!(!era(&sa, "7.1-8").tls.offers_aead());
        assert!(era(&sa, "9-10.0").tls.offers_aead());
    }

    #[test]
    fn tls13_eras_advertise_via_supported_versions() {
        let ch = chrome();
        let e = era(&ch, "65-66");
        let hello = e
            .tls
            .build_hello(None, &crate::spec::HelloEntropy::from_seed(1));
        assert!(hello.offers_tls13());
        // Legacy version field stays at 1.2 (§6.4).
        assert_eq!(hello.legacy_version, ProtocolVersion::Tls12);
    }
}
