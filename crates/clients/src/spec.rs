//! Client specifications: a versioned TLS configuration plus the
//! machinery to emit genuine ClientHello wire bytes from it.
//!
//! A [`ClientSpec`] is one (software, version-range) row of the client
//! database — the unit the paper's fingerprint database labels. Its
//! [`TlsConfig`] captures everything a fingerprint can see: cipher order,
//! extension order, curves, point formats, GREASE behaviour, and the
//! version-negotiation style.

use tlscope_chron::Date;
use tlscope_fingerprint::{Category, Fingerprint};
use tlscope_wire::codec::{patch_bytes, patch_u16, Writer};
use tlscope_wire::exts::{ext_body, ext_type, write_extension};
use tlscope_wire::grease::{grease_value, is_grease};
use tlscope_wire::handshake::handshake_type;
use tlscope_wire::{CipherSuite, ClientHello, Extension, NamedGroup, ProtocolVersion};

/// Full TLS configuration of one client version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsConfig {
    /// The version field placed in the hello (maximum supported for
    /// pre-1.3 clients; pinned to 1.2 for 1.3-capable clients).
    pub legacy_version: ProtocolVersion,
    /// Versions advertised via `supported_versions`; empty for clients
    /// that use classic version negotiation.
    pub supported_versions: Vec<ProtocolVersion>,
    /// Minimum version the client will fall back to.
    pub min_version: ProtocolVersion,
    /// Cipher suites in preference order (SCSVs included if sent).
    pub ciphers: Vec<CipherSuite>,
    /// Extension types in hello order.
    pub extensions: Vec<u16>,
    /// `supported_groups` body.
    pub curves: Vec<NamedGroup>,
    /// `ec_point_formats` body.
    pub point_formats: Vec<u8>,
    /// Compression methods offered.
    pub compression: Vec<u8>,
    /// Whether the client GREASEs its hello (Chrome ≥ 55).
    pub grease: bool,
    /// Heartbeat mode advertised, if the heartbeat extension is listed
    /// (1 = peer_allowed_to_send). OpenSSL-linked clients set this.
    pub heartbeat_mode: u8,
}

impl TlsConfig {
    /// Build the ClientHello this configuration emits.
    ///
    /// `entropy` supplies all nondeterminism (random bytes, session id,
    /// GREASE draws) so that hello construction itself is deterministic
    /// and testable.
    pub fn build_hello(&self, sni: Option<&str>, entropy: &HelloEntropy) -> ClientHello {
        let mut ciphers: Vec<CipherSuite> = Vec::with_capacity(self.ciphers.len() + 1);
        if self.grease {
            ciphers.push(CipherSuite(grease_value(entropy.grease_draws[0])));
        }
        ciphers.extend(self.ciphers.iter().copied());

        let mut exts: Vec<Extension> = Vec::with_capacity(self.extensions.len() + 2);
        if self.grease {
            exts.push(Extension::empty(grease_value(entropy.grease_draws[1])));
        }
        for &t in &self.extensions {
            exts.push(self.materialise_extension(t, sni, entropy));
        }
        if self.grease {
            // Chrome places a second GREASE extension at the end,
            // followed by padding; we keep just the extension.
            exts.push(Extension::empty(grease_value(
                entropy.grease_draws[2].wrapping_add(1),
            )));
        }

        ClientHello {
            legacy_version: self.legacy_version,
            random: entropy.random,
            session_id: entropy.session_id.clone(),
            cipher_suites: ciphers,
            compression_methods: self.compression.clone(),
            extensions: if self.extensions.is_empty() && !self.grease {
                // Truly extension-free hello (pre-TLS or minimal stacks).
                None
            } else {
                Some(exts)
            },
        }
    }

    fn materialise_extension(
        &self,
        typ: u16,
        sni: Option<&str>,
        entropy: &HelloEntropy,
    ) -> Extension {
        match typ {
            ext_type::SERVER_NAME => Extension::server_name(sni.unwrap_or("example.com")),
            ext_type::SUPPORTED_GROUPS => {
                let mut curves = self.curves.clone();
                if self.grease {
                    curves.insert(0, NamedGroup(grease_value(entropy.grease_draws[3])));
                }
                Extension::supported_groups(&curves)
            }
            ext_type::EC_POINT_FORMATS => Extension::ec_point_formats(&self.point_formats),
            ext_type::SUPPORTED_VERSIONS => {
                let mut vs = self.supported_versions.clone();
                if self.grease {
                    vs.insert(
                        0,
                        ProtocolVersion::Unknown(grease_value(entropy.grease_draws[0])),
                    );
                }
                Extension::supported_versions(&vs)
            }
            ext_type::HEARTBEAT => Extension::heartbeat(self.heartbeat_mode),
            ext_type::RENEGOTIATION_INFO => Extension::renegotiation_info(),
            ext_type::SIGNATURE_ALGORITHMS => {
                // A representative (hash, sig) list; content does not
                // feed the 4-feature fingerprint.
                Extension::signature_algorithms(&[
                    0x0403, 0x0503, 0x0603, 0x0401, 0x0501, 0x0601, 0x0201,
                ])
            }
            ext_type::ALPN => Extension::alpn(&["h2", "http/1.1"]),
            other => Extension::empty(other),
        }
    }

    /// Fill `out` with the on-wire cipher-suite order this configuration
    /// emits (GREASE prepended when applicable), reusing the buffer.
    pub fn hello_ciphers_into(&self, entropy: &HelloEntropy, out: &mut Vec<CipherSuite>) {
        out.clear();
        if self.grease {
            out.push(CipherSuite(grease_value(entropy.grease_draws[0])));
        }
        out.extend(self.ciphers.iter().copied());
    }

    /// Append the framed ClientHello handshake message to `w` —
    /// byte-identical to `build_hello(sni, entropy).to_handshake_bytes()`
    /// with `ciphers` as the suite list — without materialising a
    /// [`ClientHello`] or any [`Extension`].
    ///
    /// `ciphers` is the final on-wire suite order, normally produced by
    /// [`TlsConfig::hello_ciphers_into`] (the caller may reorder it, as
    /// the cipher-shuffling client does).
    pub fn write_hello_into(
        &self,
        sni: Option<&str>,
        entropy: &HelloEntropy,
        ciphers: &[CipherSuite],
        w: &mut Writer,
    ) {
        self.write_hello_recording(sni, entropy, ciphers, w);
    }

    /// [`TlsConfig::write_hello_into`], additionally recording the
    /// offsets of every volatile byte range into a [`HelloPatches`] —
    /// the single serialiser behind both, so the patch map can never
    /// drift from the bytes it describes. Offsets are absolute
    /// positions in `w`'s buffer; callers start from an empty buffer.
    pub fn write_hello_recording(
        &self,
        sni: Option<&str>,
        entropy: &HelloEntropy,
        ciphers: &[CipherSuite],
        w: &mut Writer,
    ) -> HelloPatches {
        let mut patches = HelloPatches::default();
        w.u8(handshake_type::CLIENT_HELLO);
        w.vec24(|w| {
            w.u16(self.legacy_version.to_wire());
            patches.random = w.len();
            w.bytes(&entropy.random);
            patches.session_id = w.len() + 1;
            patches.session_id_len = entropy.session_id.len();
            w.vec8(|w| {
                w.bytes(&entropy.session_id);
            });
            w.vec16(|w| {
                for c in ciphers {
                    if patches.grease_cipher.is_none() && is_grease(c.0) {
                        patches.grease_cipher = Some(w.len());
                    }
                    w.u16(c.0);
                }
            });
            w.vec8(|w| {
                w.bytes(&self.compression);
            });
            if !self.extensions.is_empty() || self.grease {
                w.vec16(|w| {
                    if self.grease {
                        patches.grease_ext1 = Some(w.len());
                        write_extension(w, grease_value(entropy.grease_draws[1]), |_| {});
                    }
                    for &t in &self.extensions {
                        self.write_one_extension(w, t, sni, entropy, &mut patches);
                    }
                    if self.grease {
                        patches.grease_ext2 = Some(w.len());
                        write_extension(
                            w,
                            grease_value(entropy.grease_draws[2].wrapping_add(1)),
                            |_| {},
                        );
                    }
                });
            }
        });
        patches
    }

    /// Write one extension the way `materialise_extension` builds it,
    /// straight into `w`.
    fn write_one_extension(
        &self,
        w: &mut Writer,
        typ: u16,
        sni: Option<&str>,
        entropy: &HelloEntropy,
        patches: &mut HelloPatches,
    ) {
        match typ {
            ext_type::SERVER_NAME => write_extension(w, typ, |w| {
                ext_body::server_name(w, sni.unwrap_or("example.com"));
            }),
            ext_type::SUPPORTED_GROUPS => write_extension(w, typ, |w| {
                // The GREASE entry leads the vec16 list: 2 length
                // bytes, then the value.
                let grease = self.grease.then(|| {
                    patches.grease_group = Some(w.len() + 2);
                    grease_value(entropy.grease_draws[3])
                });
                ext_body::supported_groups(
                    w,
                    grease.into_iter().chain(self.curves.iter().map(|g| g.0)),
                );
            }),
            ext_type::EC_POINT_FORMATS => write_extension(w, typ, |w| {
                ext_body::ec_point_formats(w, &self.point_formats);
            }),
            ext_type::SUPPORTED_VERSIONS => write_extension(w, typ, |w| {
                // The GREASE entry leads the vec8 list: 1 length byte,
                // then the value.
                let grease = self.grease.then(|| {
                    patches.grease_supported_version = Some(w.len() + 1);
                    grease_value(entropy.grease_draws[0])
                });
                ext_body::supported_versions(
                    w,
                    grease
                        .into_iter()
                        .chain(self.supported_versions.iter().map(|v| v.to_wire())),
                );
            }),
            ext_type::HEARTBEAT => write_extension(w, typ, |w| {
                ext_body::heartbeat(w, self.heartbeat_mode);
            }),
            ext_type::RENEGOTIATION_INFO => write_extension(w, typ, |w| {
                ext_body::renegotiation_info(w);
            }),
            ext_type::SIGNATURE_ALGORITHMS => write_extension(w, typ, |w| {
                ext_body::signature_algorithms(
                    w,
                    &[0x0403, 0x0503, 0x0603, 0x0401, 0x0501, 0x0601, 0x0201],
                );
            }),
            ext_type::ALPN => write_extension(w, typ, |w| {
                ext_body::alpn(w, &["h2", "http/1.1"]);
            }),
            other => write_extension(w, other, |_| {}),
        }
    }

    /// The fingerprint this configuration produces (GREASE draws do not
    /// affect it, by construction of the fingerprint extractor).
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::from_client_hello(&self.build_hello(None, &HelloEntropy::zero()))
    }

    // ---- classification helpers used by the client-config tables ----

    /// Count of offered suites satisfying `pred` (SCSVs never counted).
    pub fn count_ciphers(&self, pred: impl Fn(CipherSuite) -> bool) -> usize {
        self.ciphers
            .iter()
            .filter(|c| !c.is_signaling() && pred(**c))
            .count()
    }

    /// Number of CBC suites offered (Table 3).
    pub fn cbc_count(&self) -> usize {
        self.count_ciphers(|c| c.is_cbc())
    }

    /// Number of RC4 suites offered (Table 4).
    pub fn rc4_count(&self) -> usize {
        self.count_ciphers(|c| c.is_rc4())
    }

    /// Number of 3DES suites offered (Table 5).
    pub fn tdes_count(&self) -> usize {
        self.count_ciphers(|c| c.is_3des())
    }

    /// True if any offered suite is AEAD.
    pub fn offers_aead(&self) -> bool {
        self.ciphers.iter().any(|c| c.is_aead())
    }

    /// True if the client supports version `v` (or, for the TLS 1.3
    /// family, any 1.3 draft/experiment — drafts count as 1.3 support).
    pub fn supports_version(&self, v: ProtocolVersion) -> bool {
        if v.is_tls13_family() {
            return self
                .supported_versions
                .iter()
                .any(|sv| sv.is_tls13_family());
        }
        if self
            .supported_versions
            .iter()
            .any(|sv| sv.rank() >= v.rank())
        {
            return true;
        }
        self.legacy_version.rank() >= v.rank() && v.rank() >= self.min_version.rank()
    }
}

/// The patch map of a serialised ClientHello template: byte offsets of
/// every range that varies per connection while the rest of the
/// message stays bit-identical for a given `(config, sni)` pair.
///
/// Recorded by [`TlsConfig::write_hello_recording`]; applying the map
/// to a cached copy of those bytes with fresh [`HelloEntropy`]
/// reproduces exactly what a fresh serialisation would emit — the
/// template side of the hello cache. Validity requires the new
/// entropy's session id to have the recorded length ([`Self::matches`])
/// and the GREASE suite slot (if any) to sit at the recorded position,
/// which holds for every stable-order client configuration.
#[derive(Debug, Clone, Default)]
pub struct HelloPatches {
    /// Offset of the 32-byte client random.
    pub random: usize,
    /// Offset of the session-id content bytes (its length byte, part
    /// of the stable template, precedes it).
    pub session_id: usize,
    /// Length of the session id the template was recorded with.
    pub session_id_len: usize,
    /// Offset of the GREASE cipher-suite slot, when the config GREASEs.
    pub grease_cipher: Option<usize>,
    /// Offset of the leading GREASE extension's type field.
    pub grease_ext1: Option<usize>,
    /// Offset of the trailing GREASE extension's type field.
    pub grease_ext2: Option<usize>,
    /// Offset of the GREASE entry in `supported_versions`.
    pub grease_supported_version: Option<usize>,
    /// Offset of the GREASE entry in `supported_groups`.
    pub grease_group: Option<usize>,
}

impl HelloPatches {
    /// Shift every recorded offset by `delta` — used when the template
    /// bytes gain a prefix after recording (the 5-byte record header
    /// the generator wraps around a single-record hello).
    pub fn shift(&mut self, delta: usize) {
        self.random += delta;
        self.session_id += delta;
        for slot in [
            &mut self.grease_cipher,
            &mut self.grease_ext1,
            &mut self.grease_ext2,
            &mut self.grease_supported_version,
            &mut self.grease_group,
        ]
        .into_iter()
        .flatten()
        {
            *slot += delta;
        }
    }

    /// True when a template recorded with this map can be re-entropied
    /// with `entropy` (the session id must keep its recorded length —
    /// a different length would move every later offset).
    pub fn matches(&self, entropy: &HelloEntropy) -> bool {
        entropy.session_id.len() == self.session_id_len
    }

    /// Rewrite the volatile ranges of `buf` (a copy of the template
    /// bytes) for `entropy`, reproducing a fresh serialisation. The
    /// GREASE draw mapping mirrors [`TlsConfig::write_hello_recording`]:
    /// draw 0 feeds both the cipher slot and `supported_versions`,
    /// draw 1 the leading and draw 2 (+1) the trailing GREASE
    /// extension, draw 3 `supported_groups`.
    pub fn apply(&self, buf: &mut [u8], entropy: &HelloEntropy) {
        debug_assert!(self.matches(entropy), "session-id length changed");
        let draws = &entropy.grease_draws;
        patch_bytes(buf, self.random, &entropy.random);
        patch_bytes(buf, self.session_id, &entropy.session_id);
        if let Some(off) = self.grease_cipher {
            patch_u16(buf, off, grease_value(draws[0]));
        }
        if let Some(off) = self.grease_ext1 {
            patch_u16(buf, off, grease_value(draws[1]));
        }
        if let Some(off) = self.grease_ext2 {
            patch_u16(buf, off, grease_value(draws[2].wrapping_add(1)));
        }
        if let Some(off) = self.grease_supported_version {
            patch_u16(buf, off, grease_value(draws[0]));
        }
        if let Some(off) = self.grease_group {
            patch_u16(buf, off, grease_value(draws[3]));
        }
    }
}

/// All nondeterministic inputs to hello construction.
#[derive(Debug, Clone)]
pub struct HelloEntropy {
    /// The 32-byte client random.
    pub random: [u8; 32],
    /// Session id to resume (usually empty or 32 bytes).
    pub session_id: Vec<u8>,
    /// GREASE draw indices (used only when the config GREASEs).
    pub grease_draws: [u8; 4],
}

impl HelloEntropy {
    /// Deterministic all-zero entropy; used for fingerprint extraction.
    pub fn zero() -> Self {
        HelloEntropy {
            random: [0; 32],
            session_id: Vec::new(),
            grease_draws: [0; 4],
        }
    }

    /// Derive entropy from a seed using SplitMix64 — cheap, stateless,
    /// and reproducible across the whole simulation.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut random = [0u8; 32];
        for chunk in random.chunks_mut(8) {
            chunk.copy_from_slice(&next().to_le_bytes());
        }
        let draws = next().to_le_bytes();
        HelloEntropy {
            random,
            session_id: Vec::new(),
            grease_draws: [draws[0], draws[1], draws[2], draws[3]],
        }
    }
}

/// One labelled client: software identity plus the configuration it
/// shipped in a version range.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Software name ("Firefox", "OpenSSL", "Android SDK", ...).
    pub name: &'static str,
    /// Fingerprint-database category.
    pub category: Category,
    /// Version label for this configuration era ("27-32").
    pub versions: &'static str,
    /// Date this configuration started shipping.
    pub released: Date,
    /// The TLS configuration.
    pub tls: TlsConfig,
}

impl ClientSpec {
    /// The fingerprint-database label for this spec.
    pub fn label(&self) -> tlscope_fingerprint::Label {
        tlscope_fingerprint::Label::new(self.name, self.category, self.versions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(grease: bool) -> TlsConfig {
        TlsConfig {
            legacy_version: ProtocolVersion::Tls12,
            supported_versions: vec![],
            min_version: ProtocolVersion::Tls10,
            ciphers: vec![
                CipherSuite(0xc02b),
                CipherSuite(0xc02f),
                CipherSuite(0xc013),
                CipherSuite(0x000a),
            ],
            extensions: vec![
                ext_type::SERVER_NAME,
                ext_type::RENEGOTIATION_INFO,
                ext_type::SUPPORTED_GROUPS,
                ext_type::EC_POINT_FORMATS,
                ext_type::SESSION_TICKET,
                ext_type::SIGNATURE_ALGORITHMS,
            ],
            curves: vec![NamedGroup::X25519, NamedGroup::SECP256R1],
            point_formats: vec![0],
            compression: vec![0],
            grease,
            heartbeat_mode: 1,
        }
    }

    #[test]
    fn hello_roundtrips_through_wire() {
        let cfg = config(false);
        let hello = cfg.build_hello(Some("mozilla.org"), &HelloEntropy::from_seed(7));
        let parsed = ClientHello::parse_handshake(&hello.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, hello);
        assert_eq!(
            parsed
                .find_extension(ext_type::SERVER_NAME)
                .unwrap()
                .parse_server_name()
                .unwrap(),
            "mozilla.org"
        );
    }

    #[test]
    fn grease_draws_do_not_change_fingerprint() {
        let cfg = config(true);
        let fp1 =
            Fingerprint::from_client_hello(&cfg.build_hello(None, &HelloEntropy::from_seed(1)));
        let fp2 =
            Fingerprint::from_client_hello(&cfg.build_hello(None, &HelloEntropy::from_seed(999)));
        assert_eq!(fp1, fp2);
        assert_eq!(fp1, cfg.fingerprint());
    }

    #[test]
    fn grease_and_plain_configs_share_visible_fingerprint() {
        // Stripping GREASE makes the greased config's fingerprint equal
        // to the plain one's — that is the point of stripping.
        assert_eq!(config(true).fingerprint(), config(false).fingerprint());
    }

    #[test]
    fn grease_values_present_on_wire() {
        let cfg = config(true);
        let hello = cfg.build_hello(None, &HelloEntropy::from_seed(3));
        assert!(tlscope_wire::is_grease(hello.cipher_suites[0].0));
        let ext_types: Vec<u16> = hello.extensions().iter().map(|e| e.typ).collect();
        assert!(ext_types.iter().any(|t| tlscope_wire::is_grease(*t)));
    }

    #[test]
    fn cipher_census_helpers() {
        let cfg = config(false);
        // cbc_count follows the Table 3 convention: all CBC-mode suites
        // including 3DES.
        assert_eq!(cfg.cbc_count(), 2);
        assert_eq!(cfg.rc4_count(), 0);
        assert_eq!(cfg.tdes_count(), 1);
        assert!(cfg.offers_aead());
    }

    #[test]
    fn scsv_not_counted_as_cipher() {
        let mut cfg = config(false);
        cfg.ciphers.push(CipherSuite(0x00ff));
        assert_eq!(cfg.count_ciphers(|c| c.is_null_encryption()), 0);
    }

    #[test]
    fn version_support_classic() {
        let cfg = config(false);
        assert!(cfg.supports_version(ProtocolVersion::Tls12));
        assert!(cfg.supports_version(ProtocolVersion::Tls10));
        assert!(!cfg.supports_version(ProtocolVersion::Tls13));
        assert!(!cfg.supports_version(ProtocolVersion::Ssl3)); // below min
    }

    #[test]
    fn version_support_tls13_style() {
        let mut cfg = config(false);
        cfg.supported_versions = vec![ProtocolVersion::Tls13Draft(18), ProtocolVersion::Tls12];
        cfg.extensions.push(ext_type::SUPPORTED_VERSIONS);
        assert!(cfg.supports_version(ProtocolVersion::Tls13));
        let hello = cfg.build_hello(None, &HelloEntropy::zero());
        assert!(hello.offers_tls13());
    }

    #[test]
    fn write_hello_into_matches_build_hello_across_catalog() {
        // The allocation-free serialiser must be byte-identical to the
        // materialise-then-serialise path for every catalogued
        // configuration, with and without SNI, greased or not.
        let mut ciphers = Vec::new();
        for fam in crate::catalog::all_families() {
            for era in &fam.eras {
                for sni in [None, Some("mozilla.org")] {
                    for seed in [0u64, 7, 0xDEAD_BEEF] {
                        let entropy = HelloEntropy::from_seed(seed);
                        let want = era.tls.build_hello(sni, &entropy).to_handshake_bytes();
                        era.tls.hello_ciphers_into(&entropy, &mut ciphers);
                        let mut w = Writer::new();
                        era.tls.write_hello_into(sni, &entropy, &ciphers, &mut w);
                        assert_eq!(
                            w.into_bytes(),
                            want,
                            "{} {} sni={sni:?} seed={seed}",
                            fam.name,
                            era.versions
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn patched_template_matches_fresh_serialisation_across_catalog() {
        // Record a template with one entropy draw, then re-entropy the
        // cached bytes through the patch map for other draws: the
        // result must be byte-identical to serialising from scratch,
        // for every catalogued configuration. This is the invariant
        // the generation-side template cache rests on.
        let mut ciphers = Vec::new();
        for fam in crate::catalog::all_families() {
            for era in &fam.eras {
                for sni in [None, Some("mozilla.org")] {
                    let base = HelloEntropy::from_seed(11);
                    era.tls.hello_ciphers_into(&base, &mut ciphers);
                    let mut w = Writer::new();
                    let patches = era.tls.write_hello_recording(sni, &base, &ciphers, &mut w);
                    let template = w.into_bytes();
                    for seed in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
                        let entropy = HelloEntropy::from_seed(seed);
                        assert!(patches.matches(&entropy));
                        let mut patched = template.clone();
                        patches.apply(&mut patched, &entropy);
                        era.tls.hello_ciphers_into(&entropy, &mut ciphers);
                        let mut fresh = Writer::new();
                        era.tls
                            .write_hello_into(sni, &entropy, &ciphers, &mut fresh);
                        assert_eq!(
                            patched,
                            fresh.into_bytes(),
                            "{} {} sni={sni:?} seed={seed}",
                            fam.name,
                            era.versions
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn patch_shift_moves_every_offset() {
        let cfg = config(true);
        let entropy = HelloEntropy::from_seed(5);
        let mut ciphers = Vec::new();
        cfg.hello_ciphers_into(&entropy, &mut ciphers);
        let mut w = Writer::new();
        let mut patches = cfg.write_hello_recording(None, &entropy, &ciphers, &mut w);
        let bytes = w.into_bytes();
        let random = patches.random;
        let grease_cipher = patches.grease_cipher.unwrap();
        // The recorded cipher slot really holds the GREASE value.
        assert!(tlscope_wire::is_grease(u16::from_be_bytes([
            bytes[grease_cipher],
            bytes[grease_cipher + 1],
        ])));
        assert_eq!(&bytes[random..random + 32], &entropy.random);
        patches.shift(5);
        assert_eq!(patches.random, random + 5);
        assert_eq!(patches.grease_cipher, Some(grease_cipher + 5));
    }

    #[test]
    fn hello_ciphers_into_reuses_buffer() {
        let cfg = config(true);
        let entropy = HelloEntropy::from_seed(5);
        let mut buf = vec![CipherSuite(0xdead); 32];
        cfg.hello_ciphers_into(&entropy, &mut buf);
        assert_eq!(buf.len(), cfg.ciphers.len() + 1);
        assert!(tlscope_wire::is_grease(buf[0].0));
        assert_eq!(&buf[1..], &cfg.ciphers[..]);
    }

    #[test]
    fn entropy_is_deterministic() {
        assert_eq!(
            HelloEntropy::from_seed(42).random,
            HelloEntropy::from_seed(42).random
        );
        assert_ne!(
            HelloEntropy::from_seed(42).random,
            HelloEntropy::from_seed(43).random
        );
    }
}
