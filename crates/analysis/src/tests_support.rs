//! Test-only helpers: build small synthetic aggregates with known
//! contents so the figure/section generators can be unit-tested without
//! running a simulation.

#![cfg(test)]

use tlscope_chron::{Date, Month};
use tlscope_fingerprint::Fingerprint;
use tlscope_notary::{ClientOffer, ConnectionRecord, NotaryAggregate, ServerAnswer, ServerOutcome};
use tlscope_wire::{CipherSuite, ProtocolVersion};

/// Build an offer over given suite ids.
pub fn offer(suites: &[u16]) -> ClientOffer {
    ClientOffer {
        legacy_version: ProtocolVersion::Tls12,
        versions: vec![ProtocolVersion::Tls12],
        supported_versions_raw: vec![],
        heartbeat: false,
        extension_types: vec![0, 10, 11],
        fingerprint: Fingerprint {
            ciphers: suites.to_vec(),
            extensions: vec![0, 10, 11],
            curves: vec![23],
            point_formats: vec![0],
        },
        suites: suites.iter().map(|&s| CipherSuite(s)).collect(),
        fp_id64: None,
    }
}

/// Build a record on `date` with an offer and an optional negotiated
/// suite.
pub fn record(date: Date, suites: &[u16], negotiated: Option<u16>) -> ConnectionRecord {
    ConnectionRecord {
        date,
        month: date.month(),
        port: 443,
        sslv2: false,
        client: Some(offer(suites)),
        server: match negotiated {
            Some(c) => ServerOutcome::Answered(ServerAnswer {
                version: ProtocolVersion::Tls12,
                cipher: CipherSuite(c),
                curve: None,
                heartbeat: false,
            }),
            None => ServerOutcome::Rejected { alert: None },
        },
        salvaged: false,
    }
}

/// An aggregate over `months` where each month has `per_month` copies
/// of each (suites, negotiated) case.
pub fn aggregate(
    months: &[Month],
    cases: &[(&[u16], Option<u16>)],
    per_month: usize,
) -> NotaryAggregate {
    let mut agg = NotaryAggregate::new();
    for month in months {
        for (suites, negotiated) in cases {
            for day in 0..per_month {
                let date =
                    Date::new(month.year(), month.month_of_year(), 1 + (day % 27) as u8).unwrap();
                agg.ingest(&record(date, suites, *negotiated));
            }
        }
    }
    agg
}
