//! Table generators: Tables 1–6 of the paper.
//!
//! Tables 3–6 are derived from the client-configuration catalog — the
//! same data whose unit tests assert the paper's exact counts — so the
//! rendered tables are the catalog speaking, not hand-copied strings.

use tlscope_clients::catalog;
use tlscope_clients::Family;
use tlscope_fingerprint::CoverageStats;
use tlscope_notary::NotaryAggregate;
use tlscope_wire::ProtocolVersion;

use crate::series::Table;

/// Table 1: release dates of all SSL/TLS versions.
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        "Release dates of all SSL/TLS versions",
        vec!["Version", "Release Date"],
    );
    for v in ProtocolVersion::released() {
        let date = v.release_date().unwrap();
        t.push_row(vec![v.to_string(), date.to_string()]);
    }
    t
}

/// Table 2: fingerprint database summary with traffic coverage.
///
/// Needs a passive run: coverage is traffic-weighted.
pub fn table2(agg: &NotaryAggregate) -> Table {
    let (db, _) = catalog::build_database();
    let mut cov = CoverageStats::new();
    for (fp, count) in agg.iter_fp_counts() {
        cov.observe(&db, fp, count);
    }
    let mut t = Table::new(
        "table2",
        "Fingerprint summary: unique fingerprints and matched-connection coverage",
        vec!["Type", "# FPs", "Coverage"],
    );
    for (label, count, pct) in cov.table2(&db) {
        t.push_row(vec![label, count.to_string(), format!("{pct:.2}%")]);
    }
    t
}

fn browser_families() -> Vec<Family> {
    vec![
        tlscope_clients::browsers::firefox(),
        tlscope_clients::browsers::chrome(),
        tlscope_clients::browsers::opera(),
        tlscope_clients::browsers::ie_edge(),
        tlscope_clients::browsers::safari(),
    ]
}

/// Change-log table over browser eras for a per-config counter.
fn cipher_change_table(
    id: &str,
    title: &str,
    counter: impl Fn(&tlscope_clients::TlsConfig) -> usize,
) -> Table {
    let mut t = Table::new(id, title, vec!["Browser", "Ver.", "Date", "Count"]);
    for fam in browser_families() {
        let mut prev: Option<usize> = None;
        for era in &fam.eras {
            let n = counter(&era.tls);
            if prev != Some(n) {
                t.push_row(vec![
                    fam.name.to_string(),
                    era.versions.to_string(),
                    era.from.to_string(),
                    match prev {
                        Some(p) => format!("{p} -> {n}"),
                        None => n.to_string(),
                    },
                ]);
                prev = Some(n);
            }
        }
    }
    t
}

/// Table 3: changes in the number of CBC cipher suites offered by major
/// browsers.
pub fn table3() -> Table {
    cipher_change_table(
        "table3",
        "Changes in the number of CBC ciphersuites offered by major browsers",
        |tls| tls.cbc_count(),
    )
}

/// Table 4: changes in RC4 cipher-suite support by major browsers.
pub fn table4() -> Table {
    cipher_change_table(
        "table4",
        "Changes in the support of RC4 ciphersuites by major browsers",
        |tls| tls.rc4_count(),
    )
}

/// Table 5: changes in 3DES cipher-suite support by major browsers.
pub fn table5() -> Table {
    cipher_change_table(
        "table5",
        "Changes in the number of 3DES ciphersuites offered by major browsers",
        |tls| tls.tdes_count(),
    )
}

/// Table 6: browser TLS version support timeline.
pub fn table6() -> Table {
    let mut t = Table::new(
        "table6",
        "Browser TLS version support",
        vec!["Browser", "Ver.", "Date", "Protocol Support"],
    );
    for fam in browser_families() {
        let mut prev: Option<String> = None;
        for era in &fam.eras {
            let mut supported: Vec<&str> = Vec::new();
            for (v, label) in [
                (ProtocolVersion::Ssl3, "SSL3"),
                (ProtocolVersion::Tls10, "TLS1.0"),
                (ProtocolVersion::Tls11, "TLS1.1"),
                (ProtocolVersion::Tls12, "TLS1.2"),
                (ProtocolVersion::Tls13, "TLS1.3"),
            ] {
                if era.tls.supports_version(v) {
                    supported.push(label);
                }
            }
            let desc = supported.join("/");
            if prev.as_deref() != Some(&desc) {
                t.push_row(vec![
                    fam.name.to_string(),
                    era.versions.to_string(),
                    era.from.to_string(),
                    desc.clone(),
                ]);
                prev = Some(desc);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_table_1() {
        let t = table1();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.rows[0][0], "SSLv2");
        assert_eq!(t.rows[0][1], "1995-02-01");
        assert_eq!(t.rows[5][0], "TLSv1.3");
        assert_eq!(t.rows[5][1], "2018-08-01");
    }

    #[test]
    fn table3_contains_paper_rows() {
        let ascii = table3().to_ascii();
        // Firefox 27: 29 → 17; Chrome 29: 29 → 16; Opera 30: 9 → 7;
        // Chrome 56: 7 → 5.
        assert!(ascii.contains("29 -> 17"), "{ascii}");
        assert!(ascii.contains("29 -> 16"), "{ascii}");
        assert!(ascii.contains("9 -> 7"), "{ascii}");
        assert!(ascii.contains("7 -> 5"), "{ascii}");
    }

    #[test]
    fn table4_shows_rc4_removals() {
        let t = table4();
        // Every browser family ends at zero RC4.
        for name in ["Firefox", "Chrome", "Opera", "IE/Edge", "Safari"] {
            let last = t
                .rows
                .iter()
                .rfind(|r| r[0] == name)
                .unwrap_or_else(|| panic!("no rows for {name}"));
            assert!(last[3].ends_with("-> 0"), "{name}: {:?}", last);
        }
    }

    #[test]
    fn table5_shows_3des_reductions() {
        let ascii = table5().to_ascii();
        assert!(ascii.contains("8 -> 3"), "{ascii}"); // Firefox 27
        assert!(ascii.contains("8 -> 1"), "{ascii}"); // Chrome 29 / Opera 16
        assert!(ascii.contains("7 -> 6"), "{ascii}"); // Safari 6.2
    }

    #[test]
    fn table6_version_milestones() {
        let ascii = table6().to_ascii();
        assert!(ascii.contains("TLS1.3"), "{ascii}");
        // Chrome 22 adds TLS1.1 before TLS1.2 exists for it.
        let t = table6();
        let chrome_rows: Vec<_> = t.rows.iter().filter(|r| r[0] == "Chrome").collect();
        assert!(chrome_rows.len() >= 3);
        assert!(chrome_rows[0][3] == "SSL3/TLS1.0");
        assert!(chrome_rows[1][3].contains("TLS1.1"));
        assert!(!chrome_rows[1][3].contains("TLS1.2"));
    }
}
