//! Study orchestration: run the passive and active measurements over
//! the paper's observation windows.

use tlscope_chron::Month;
use tlscope_notary::{ingest_parallel, ingest_serial, NotaryAggregate, TappedFlow};
use tlscope_scanner::{ScanCampaign, ScanSnapshot};
use tlscope_servers::ServerPopulation;
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed for all randomness.
    pub seed: u64,
    /// Passive connections simulated per month.
    pub connections_per_month: u32,
    /// First month of the passive window (paper: 2012-02).
    pub start: Month,
    /// Last month of the passive window (paper: 2018-04).
    pub end: Month,
    /// Ingestion worker threads (1 = serial).
    pub workers: usize,
    /// Tap fault injection.
    pub faults: FaultInjector,
    /// Hosts per active sweep.
    pub scan_hosts: u32,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x1C51_2012,
            connections_per_month: 12_000,
            start: Month::ym(2012, 1),
            end: Month::ym(2018, 4),
            workers: 4,
            faults: FaultInjector::tap_defaults(),
            scan_hosts: 4_000,
        }
    }
}

impl StudyConfig {
    /// A small configuration for tests and quick demos.
    pub fn quick() -> Self {
        StudyConfig {
            connections_per_month: 1_500,
            scan_hosts: 800,
            ..StudyConfig::default()
        }
    }
}

/// A study: the passive tap plus the active scanner.
pub struct Study {
    cfg: StudyConfig,
    generator: Generator,
    population: ServerPopulation,
}

impl Study {
    /// Build a study from a configuration.
    pub fn new(cfg: StudyConfig) -> Self {
        let generator = Generator::new(TrafficConfig {
            seed: cfg.seed,
            connections_per_month: cfg.connections_per_month,
            faults: cfg.faults,
        });
        Study {
            cfg,
            generator,
            population: ServerPopulation::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// The traffic generator (exposed for market-share inspection).
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Run the passive measurement over the configured window.
    pub fn run_passive(&self) -> NotaryAggregate {
        let flows = self
            .generator
            .months(self.cfg.start, self.cfg.end)
            .flat_map(|(_, events)| events.into_iter())
            .map(|ev| TappedFlow {
                date: ev.date,
                port: ev.port,
                client: ev.client_flow,
                server: ev.server_flow,
            });
        if self.cfg.workers <= 1 {
            ingest_serial(flows)
        } else {
            ingest_parallel(flows, self.cfg.workers)
        }
    }

    /// Run the active campaign (monthly cadence over the Censys window).
    pub fn run_active(&self) -> Vec<ScanSnapshot> {
        ScanCampaign::censys_monthly(self.cfg.scan_hosts, self.cfg.seed).run(&self.population)
    }

    /// Run the active campaign at the paper's weekly cadence.
    pub fn run_active_weekly(&self) -> Vec<ScanSnapshot> {
        ScanCampaign::censys_weekly(self.cfg.scan_hosts, self.cfg.seed).run(&self.population)
    }

    /// All months of the passive window.
    pub fn months(&self) -> Vec<Month> {
        self.cfg.start.iter_through(self.cfg.end).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_end_to_end() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 1);
        cfg.end = Month::ym(2015, 4);
        cfg.connections_per_month = 400;
        let study = Study::new(cfg);
        let agg = study.run_passive();
        assert_eq!(agg.iter_months().count(), 4);
        let m = agg.month(Month::ym(2015, 2)).unwrap();
        assert!(m.total > 350);
        assert!(m.answered > 300);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2016, 1);
        cfg.end = Month::ym(2016, 2);
        cfg.connections_per_month = 300;
        cfg.workers = 1;
        let serial = Study::new(cfg.clone()).run_passive();
        cfg.workers = 4;
        let parallel = Study::new(cfg).run_passive();
        assert_eq!(serial.total(), parallel.total());
        let sm = serial.month(Month::ym(2016, 1)).unwrap();
        let pm = parallel.month(Month::ym(2016, 1)).unwrap();
        assert_eq!(sm.neg_aead, pm.neg_aead);
        assert_eq!(sm.adv_rc4, pm.adv_rc4);
    }
}
