//! Study orchestration: run the passive and active measurements over
//! the paper's observation windows.
//!
//! The passive measurement uses a *fused* streaming runner: the
//! observation window is sharded by month across worker threads, and
//! each worker generates its month's flows and aggregates them in the
//! same loop — no month is ever materialized. Partial aggregates are
//! merged at the end (aggregation is commutative, so the result is
//! identical to a serial run), and every stage reports into a shared
//! [`PipelineMetrics`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use tlscope_chron::Month;
use tlscope_notary::{ingest_flow, NotaryAggregate, PipelineMetrics, TappedFlow};
use tlscope_scanner::{ScanCampaign, ScanSnapshot};
use tlscope_servers::ServerPopulation;
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed for all randomness.
    pub seed: u64,
    /// Passive connections simulated per month.
    pub connections_per_month: u32,
    /// First month of the passive window (paper: 2012-02).
    pub start: Month,
    /// Last month of the passive window (paper: 2018-04).
    pub end: Month,
    /// Ingestion worker threads (1 = serial).
    pub workers: usize,
    /// Tap fault injection.
    pub faults: FaultInjector,
    /// Hosts per active sweep.
    pub scan_hosts: u32,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x1C51_2012,
            connections_per_month: 12_000,
            // The Notary window (Feb 2012 – Mar 2018, §3.1) padded by
            // one month on each side so milestone checks can read the
            // boundary months; calibration tests anchor on 2018-04.
            start: Month::ym(2012, 1),
            end: Month::ym(2018, 4),
            workers: 4,
            faults: FaultInjector::tap_defaults(),
            scan_hosts: 4_000,
        }
    }
}

impl StudyConfig {
    /// A small configuration for tests and quick demos.
    pub fn quick() -> Self {
        StudyConfig {
            connections_per_month: 1_500,
            scan_hosts: 800,
            ..StudyConfig::default()
        }
    }
}

/// A study: the passive tap plus the active scanner.
pub struct Study {
    cfg: StudyConfig,
    generator: Generator,
    population: ServerPopulation,
}

impl Study {
    /// Build a study from a configuration.
    pub fn new(cfg: StudyConfig) -> Self {
        let generator = Generator::new(TrafficConfig {
            seed: cfg.seed,
            connections_per_month: cfg.connections_per_month,
            faults: cfg.faults,
        });
        Study {
            cfg,
            generator,
            population: ServerPopulation::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// The traffic generator (exposed for market-share inspection).
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Run the passive measurement over the configured window.
    pub fn run_passive(&self) -> NotaryAggregate {
        self.run_passive_metered(&PipelineMetrics::new())
    }

    /// Run the passive measurement with pipeline accounting.
    ///
    /// Months are sharded across `cfg.workers` threads through an
    /// atomic work index; each worker streams its month's events and
    /// folds them into a thread-local aggregate as they are drawn, so
    /// peak memory stays at one event per worker. A worker panic loses
    /// only that worker's shard (counted in `metrics`); the surviving
    /// partials are still merged and returned.
    pub fn run_passive_metered(&self, metrics: &PipelineMetrics) -> NotaryAggregate {
        let months: Vec<Month> = self.cfg.start.iter_through(self.cfg.end).collect();
        let workers = self.cfg.workers.max(1).min(months.len().max(1));
        let next = AtomicUsize::new(0);
        let mut result = NotaryAggregate::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut agg = NotaryAggregate::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&month) = months.get(i) else { break };
                            let mut flows = 0u64;
                            let mut ingest_time = std::time::Duration::ZERO;
                            let fail0 = (agg.not_tls, agg.garbled_client);
                            for ev in self.generator.stream_month(month).metered(metrics) {
                                let flow = TappedFlow::from(ev);
                                let started = Instant::now();
                                ingest_flow(&mut agg, &flow);
                                ingest_time += started.elapsed();
                                flows += 1;
                            }
                            metrics.record_dispatched(flows);
                            // One month shard = one accounting batch.
                            metrics.record_batch(flows, ingest_time);
                            metrics.record_parse_failures(
                                agg.not_tls - fail0.0,
                                agg.garbled_client - fail0.1,
                            );
                        }
                        agg
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(partial) => {
                        let started = Instant::now();
                        result.merge(partial);
                        metrics.record_merge(started.elapsed());
                    }
                    Err(_) => metrics.record_shard_lost(),
                }
            }
        });
        result
    }

    /// Run the active campaign (monthly cadence over the Censys window).
    pub fn run_active(&self) -> Vec<ScanSnapshot> {
        ScanCampaign::censys_monthly(self.cfg.scan_hosts, self.cfg.seed).run(&self.population)
    }

    /// Run the active campaign at the paper's weekly cadence.
    pub fn run_active_weekly(&self) -> Vec<ScanSnapshot> {
        ScanCampaign::censys_weekly(self.cfg.scan_hosts, self.cfg.seed).run(&self.population)
    }

    /// All months of the passive window.
    pub fn months(&self) -> Vec<Month> {
        self.cfg.start.iter_through(self.cfg.end).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_end_to_end() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 1);
        cfg.end = Month::ym(2015, 4);
        cfg.connections_per_month = 400;
        let study = Study::new(cfg);
        let agg = study.run_passive();
        assert_eq!(agg.iter_months().count(), 4);
        let m = agg.month(Month::ym(2015, 2)).unwrap();
        assert!(m.total > 350);
        assert!(m.answered > 300);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2016, 1);
        cfg.end = Month::ym(2016, 2);
        cfg.connections_per_month = 300;
        cfg.workers = 1;
        let serial = Study::new(cfg.clone()).run_passive();
        cfg.workers = 4;
        let parallel = Study::new(cfg).run_passive();
        // Aggregation is commutative and integer-exact, so the sharded
        // run must be bit-identical to the serial one.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn metered_run_accounts_every_flow() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2017, 1);
        cfg.end = Month::ym(2017, 3);
        cfg.connections_per_month = 250;
        cfg.workers = 2;
        let study = Study::new(cfg);
        let metrics = PipelineMetrics::new();
        let agg = study.run_passive_metered(&metrics);
        let s = metrics.snapshot();
        assert_eq!(s.flows_generated, s.flows_dispatched);
        assert_eq!(s.flows_dispatched, s.flows_ingested);
        assert_eq!(s.flows_lost(), 0);
        assert_eq!(s.shards_lost, 0);
        // One accounting batch per month shard.
        assert_eq!(s.batches_ingested, 3);
        assert_eq!(
            s.flows_ingested,
            agg.total() + agg.not_tls + agg.garbled_client
        );
        assert!(s.gen_nanos > 0 && s.ingest_nanos > 0);
    }
}
