//! Study orchestration: run the passive and active measurements over
//! the paper's observation windows.
//!
//! The passive measurement uses a *fused* streaming runner: the
//! observation window is sharded by month across worker threads, and
//! each worker generates its month's flows and aggregates them in the
//! same loop — no month is ever materialized. Partial aggregates are
//! merged at the end (aggregation is commutative, so the result is
//! identical to a serial run), and every stage reports into a shared
//! [`PipelineMetrics`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tlscope_obs::Progress;

use tlscope_chron::Month;
use tlscope_notary::{
    checkpoint, ingest_borrowed, CheckpointError, NotaryAggregate, PipelineMetrics,
};
use tlscope_scanner::{ScanCampaign, ScanCheckpointError, ScanFaults, ScanMetrics, ScanSnapshot};
use tlscope_servers::ServerPopulation;
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Master seed for all randomness.
    pub seed: u64,
    /// Passive connections simulated per month.
    pub connections_per_month: u32,
    /// First month of the passive window (paper: 2012-02).
    pub start: Month,
    /// Last month of the passive window (paper: 2018-04).
    pub end: Month,
    /// Ingestion worker threads (1 = serial).
    pub workers: usize,
    /// Tap fault injection.
    pub faults: FaultInjector,
    /// Hosts per active sweep.
    pub scan_hosts: u32,
    /// Scan-side fault injection (SYN loss, flakes, timeouts, dead
    /// hosts). Defaults to [`ScanFaults::none`] unless
    /// `TLSCOPE_SCAN_FAULT_PROFILE` names a profile, so calibration
    /// anchors see a loss-free scanner out of the box.
    pub scan_faults: ScanFaults,
    /// When set, each completed month's partial aggregate is written
    /// to this directory, and months already checkpointed there are
    /// loaded instead of re-simulated (`repro --resume <dir>`).
    pub checkpoint_dir: Option<PathBuf>,
    /// When set, each completed campaign date's snapshot + ledger is
    /// written to this directory, and dates already checkpointed there
    /// are loaded instead of re-swept (`repro --resume-scan <dir>`).
    pub scan_checkpoint_dir: Option<PathBuf>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 0x1C51_2012,
            connections_per_month: 12_000,
            // The Notary window (Feb 2012 – Mar 2018, §3.1) padded by
            // one month on each side so milestone checks can read the
            // boundary months; calibration tests anchor on 2018-04.
            start: Month::ym(2012, 1),
            end: Month::ym(2018, 4),
            workers: 4,
            faults: FaultInjector::tap_defaults(),
            scan_hosts: 4_000,
            scan_faults: ScanFaults::from_env(ScanFaults::none()),
            checkpoint_dir: None,
            scan_checkpoint_dir: None,
        }
    }
}

impl StudyConfig {
    /// A small configuration for tests and quick demos.
    pub fn quick() -> Self {
        StudyConfig {
            connections_per_month: 1_500,
            scan_hosts: 800,
            ..StudyConfig::default()
        }
    }
}

/// A study: the passive tap plus the active scanner.
pub struct Study {
    cfg: StudyConfig,
    generator: Generator,
    population: ServerPopulation,
}

impl Study {
    /// Build a study from a configuration.
    pub fn new(cfg: StudyConfig) -> Self {
        let generator = Generator::new(TrafficConfig {
            seed: cfg.seed,
            connections_per_month: cfg.connections_per_month,
            faults: cfg.faults,
        });
        Study {
            cfg,
            generator,
            population: ServerPopulation::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// The traffic generator (exposed for market-share inspection).
    pub fn generator(&self) -> &Generator {
        &self.generator
    }

    /// Run the passive measurement over the configured window.
    pub fn run_passive(&self) -> NotaryAggregate {
        self.run_passive_metered(&PipelineMetrics::new())
    }

    /// Run the passive measurement with pipeline accounting.
    ///
    /// Convenience wrapper over [`Study::try_run_passive_metered`].
    /// Checkpoint errors are only reachable with `cfg.checkpoint_dir`
    /// set; callers that checkpoint should use the `try_` variant to
    /// surface them instead of panicking here.
    pub fn run_passive_metered(&self, metrics: &PipelineMetrics) -> NotaryAggregate {
        self.try_run_passive_metered(metrics)
            .unwrap_or_else(|e| panic!("passive checkpoint error: {e}"))
    }

    /// Run the passive measurement with pipeline accounting and
    /// (optionally) per-month checkpointing.
    ///
    /// Months are sharded across `cfg.workers` threads through an
    /// atomic work index; each worker streams its month's events and
    /// folds them into a *fresh per-month partial* as they are drawn,
    /// so peak memory stays at one event per worker and a completed
    /// month is a self-contained unit of progress. With
    /// `cfg.checkpoint_dir` set, each completed partial is written
    /// atomically to `<dir>/<YYYY-MM>.ckpt` before being merged, and
    /// months already checkpointed in the directory are loaded and
    /// skipped — so an interrupted run resumes from the last completed
    /// month and, because merging is commutative and integer-exact,
    /// produces a final aggregate bit-identical to an uninterrupted
    /// one.
    ///
    /// A worker panic loses only that worker's current months (counted
    /// in `metrics`); the surviving partials are still merged and
    /// returned.
    pub fn try_run_passive_metered(
        &self,
        metrics: &PipelineMetrics,
    ) -> Result<NotaryAggregate, CheckpointError> {
        let (mut result, completed) = match &self.cfg.checkpoint_dir {
            Some(dir) => {
                let load_started = Instant::now();
                let load = checkpoint::load_dir(dir)?;
                metrics.observe_checkpoint_load(load_started.elapsed());
                metrics.record_checkpoints_loaded(load.completed.len() as u64);
                metrics.record_checkpoints_quarantined(load.quarantined.len() as u64);
                (load.aggregate, load.completed)
            }
            None => (NotaryAggregate::new(), std::collections::BTreeSet::new()),
        };
        let total_months = self.cfg.start.iter_through(self.cfg.end).count() as u64;
        let months: Vec<Month> = self
            .cfg
            .start
            .iter_through(self.cfg.end)
            .filter(|m| !completed.contains(m))
            .collect();
        let months_done = AtomicU64::new(total_months - months.len() as u64);
        let progress = Progress::from_env("passive-study", total_months, "months", "flows");
        let workers = self.cfg.workers.max(1).min(months.len().max(1));
        let next = AtomicUsize::new(0);
        // First checkpoint write error, reported after the scope ends
        // (workers stop claiming months once one is recorded).
        let ckpt_error: Mutex<Option<CheckpointError>> = Mutex::new(None);
        let stop_heartbeat = AtomicBool::new(false);
        std::thread::scope(|scope| {
            if progress.is_enabled() {
                scope.spawn(|| {
                    progress.run_ticker(&stop_heartbeat, || {
                        (
                            months_done.load(Ordering::Relaxed),
                            metrics.snapshot().flows_ingested,
                        )
                    })
                });
            }
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut agg = NotaryAggregate::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&month) = months.get(i) else { break };
                            if ckpt_error
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .is_some()
                            {
                                break;
                            }
                            let month_started = Instant::now();
                            let mut partial = NotaryAggregate::new();
                            let mut flows = 0u64;
                            let mut ingest_time = std::time::Duration::ZERO;
                            // Borrowed fast path: fold straight from
                            // the generator's scratch buffers into the
                            // aggregate — no flow buffer is ever owned.
                            let mut stream = self.generator.stream_month(month).metered(metrics);
                            while let Some(flow) = stream.next_flow() {
                                let started = Instant::now();
                                ingest_borrowed(
                                    &mut partial,
                                    flow.date,
                                    flow.port,
                                    flow.client,
                                    flow.server,
                                );
                                ingest_time += started.elapsed();
                                flows += 1;
                            }
                            metrics.record_dispatched(flows);
                            // One month shard = one accounting batch.
                            metrics.record_batch(flows, ingest_time);
                            metrics.record_parse_failures(partial.not_tls, partial.garbled_client);
                            metrics.record_salvaged(partial.salvaged);
                            tlscope_notary::flush_parse_cache_metrics(metrics);
                            if let Some(dir) = &self.cfg.checkpoint_dir {
                                let write_started = Instant::now();
                                if let Err(e) = checkpoint::write_month(dir, month, &partial) {
                                    ckpt_error
                                        .lock()
                                        .unwrap_or_else(|p| p.into_inner())
                                        .get_or_insert(e);
                                    break;
                                }
                                metrics.observe_checkpoint_write(write_started.elapsed());
                                metrics.record_checkpoint_written();
                            }
                            metrics.record_month(month_started.elapsed());
                            months_done.fetch_add(1, Ordering::Relaxed);
                            agg.merge(partial);
                        }
                        agg
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(partial) => {
                        let started = Instant::now();
                        result.merge(partial);
                        metrics.record_merge(started.elapsed());
                    }
                    Err(_) => metrics.record_shard_lost(),
                }
            }
            stop_heartbeat.store(true, Ordering::Release);
        });
        match ckpt_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// Run the active campaign (monthly cadence over the Censys window).
    pub fn run_active(&self) -> Vec<ScanSnapshot> {
        self.run_active_metered(&ScanMetrics::new())
    }

    /// Run the active campaign with scan accounting, sweep dates
    /// sharded across `cfg.workers` threads. Bit-identical to
    /// [`Study::run_active`] at any worker count (host sampling is
    /// counter-based per `(seed, date, host index)`).
    ///
    /// Convenience wrapper over [`Study::try_run_active_metered`].
    /// Checkpoint errors are only reachable with
    /// `cfg.scan_checkpoint_dir` set; checkpointing callers should use
    /// the `try_` variant to surface them instead of panicking here.
    pub fn run_active_metered(&self, metrics: &ScanMetrics) -> Vec<ScanSnapshot> {
        self.try_run_active_metered(metrics)
            .unwrap_or_else(|e| panic!("scan checkpoint error: {e}"))
    }

    /// Run the active campaign with scan accounting and (optionally)
    /// per-date checkpointing.
    ///
    /// With `cfg.scan_checkpoint_dir` set, each completed date's
    /// snapshot and ledger is written atomically to
    /// `<dir>/<YYYY-MM-DD>.ckpt`, and dates already checkpointed there
    /// are loaded (their ledgers replayed into `metrics`) and skipped —
    /// so an interrupted campaign resumes from the last completed date
    /// and produces snapshots and counters bit-identical to an
    /// uninterrupted run. Damaged checkpoint files are quarantined to
    /// `*.ckpt.bad` and their dates re-swept.
    pub fn try_run_active_metered(
        &self,
        metrics: &ScanMetrics,
    ) -> Result<Vec<ScanSnapshot>, ScanCheckpointError> {
        ScanCampaign::censys_monthly(self.cfg.scan_hosts, self.cfg.seed)
            .with_faults(self.cfg.scan_faults)
            .run_durable(
                &self.population,
                self.cfg.workers,
                metrics,
                self.cfg.scan_checkpoint_dir.as_deref(),
            )
    }

    /// Run the active campaign at the paper's weekly cadence.
    pub fn run_active_weekly(&self) -> Vec<ScanSnapshot> {
        ScanCampaign::censys_weekly(self.cfg.scan_hosts, self.cfg.seed)
            .with_faults(self.cfg.scan_faults)
            .run_parallel(&self.population, self.cfg.workers, &ScanMetrics::new())
    }

    /// All months of the passive window.
    pub fn months(&self) -> Vec<Month> {
        self.cfg.start.iter_through(self.cfg.end).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_end_to_end() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 1);
        cfg.end = Month::ym(2015, 4);
        cfg.connections_per_month = 400;
        let study = Study::new(cfg);
        let agg = study.run_passive();
        assert_eq!(agg.iter_months().count(), 4);
        let m = agg.month(Month::ym(2015, 2)).unwrap();
        assert!(m.total > 350);
        assert!(m.answered > 300);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2016, 1);
        cfg.end = Month::ym(2016, 2);
        cfg.connections_per_month = 300;
        cfg.workers = 1;
        let serial = Study::new(cfg.clone()).run_passive();
        cfg.workers = 4;
        let parallel = Study::new(cfg).run_passive();
        // Aggregation is commutative and integer-exact, so the sharded
        // run must be bit-identical to the serial one.
        assert_eq!(serial, parallel);
    }

    fn unique_dir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("tlscope-study-{tag}-{pid}-{t}"))
    }

    /// An interrupted-then-resumed checkpointed run must be
    /// bit-identical to an uninterrupted run — for the serial
    /// (workers = 1) and sharded runners alike.
    #[test]
    fn resume_from_checkpoint_is_bit_identical() {
        for workers in [1usize, 4] {
            let mut cfg = StudyConfig::quick();
            cfg.start = Month::ym(2016, 1);
            cfg.end = Month::ym(2016, 4);
            cfg.connections_per_month = 200;
            cfg.workers = workers;
            // No drops/duplication so the regenerated-flow count below
            // is exact.
            cfg.faults = FaultInjector::none();
            let uninterrupted = Study::new(cfg.clone()).run_passive();

            // Simulate a run killed after two completed months: only
            // the truncated window executes before the "crash".
            let dir = unique_dir(&format!("resume-w{workers}"));
            let mut killed = cfg.clone();
            killed.end = Month::ym(2016, 2);
            killed.checkpoint_dir = Some(dir.clone());
            let _ = Study::new(killed).run_passive();

            // Resume over the full window from the same directory.
            let mut resumed_cfg = cfg.clone();
            resumed_cfg.checkpoint_dir = Some(dir.clone());
            let metrics = PipelineMetrics::new();
            let resumed = Study::new(resumed_cfg)
                .try_run_passive_metered(&metrics)
                .unwrap();
            assert_eq!(resumed, uninterrupted, "workers = {workers}");
            // Only the two remaining months were re-simulated.
            assert_eq!(metrics.snapshot().flows_generated, 2 * 200);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn fully_checkpointed_run_resumes_without_regenerating() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 3);
        cfg.end = Month::ym(2015, 5);
        cfg.connections_per_month = 150;
        cfg.workers = 2;
        let dir = unique_dir("full");
        cfg.checkpoint_dir = Some(dir.clone());
        let first = Study::new(cfg.clone()).run_passive();
        let metrics = PipelineMetrics::new();
        let second = Study::new(cfg).try_run_passive_metered(&metrics).unwrap();
        assert_eq!(first, second);
        assert_eq!(metrics.snapshot().flows_generated, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_io_errors_surface_as_errors() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 1);
        cfg.end = Month::ym(2015, 1);
        cfg.connections_per_month = 50;
        // A file where the checkpoint directory should be.
        let path = unique_dir("clash");
        std::fs::write(&path, "not a directory").unwrap();
        cfg.checkpoint_dir = Some(path.clone());
        let err = Study::new(cfg).try_run_passive_metered(&PipelineMetrics::new());
        assert!(err.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Core scan-ledger counters (everything except wall-clock time and
    /// the checkpoint bookkeeping itself).
    fn scan_ledger_core(s: &tlscope_scanner::ScanMetricsSnapshot) -> [u64; 9] {
        [
            s.hosts_dispatched,
            s.hosts_probed,
            s.hosts_dropped,
            s.host_retries,
            s.probes_sent,
            s.handshakes_completed,
            s.handshakes_refused,
            s.probes_timed_out,
            s.sweeps_completed,
        ]
    }

    /// A scan campaign resumed from a partially-populated checkpoint
    /// directory must be bit-identical — snapshots and ledger — to an
    /// uninterrupted run.
    #[test]
    fn scan_resume_from_checkpoint_is_bit_identical() {
        let mut cfg = StudyConfig::quick();
        cfg.scan_hosts = 120;
        cfg.workers = 3;
        cfg.scan_faults = ScanFaults::scan_defaults();
        let clean_metrics = ScanMetrics::new();
        let expected = Study::new(cfg.clone())
            .try_run_active_metered(&clean_metrics)
            .unwrap();

        // A full checkpointed run, then delete the last two date files
        // to simulate a campaign killed before completing them.
        let dir = unique_dir("scan-resume");
        cfg.scan_checkpoint_dir = Some(dir.clone());
        let _ = Study::new(cfg.clone()).run_active();
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let total = files.len();
        assert_eq!(total, expected.len());
        for path in files.iter().rev().take(2) {
            std::fs::remove_file(path).unwrap();
        }

        let metrics = ScanMetrics::new();
        let resumed = Study::new(cfg).try_run_active_metered(&metrics).unwrap();
        assert_eq!(resumed, expected);
        let s = metrics.snapshot();
        assert_eq!(s.checkpoints_loaded, (total - 2) as u64);
        assert_eq!(s.checkpoints_written, 2);
        assert_eq!(s.checkpoints_quarantined, 0);
        // Replayed ledgers + the two re-swept dates reproduce the clean
        // run's accounting exactly.
        assert_eq!(
            scan_ledger_core(&s),
            scan_ledger_core(&clean_metrics.snapshot())
        );
        assert!(s.accounting_holds());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A damaged scan checkpoint is quarantined and its date re-swept;
    /// the resumed campaign still matches the clean run.
    #[test]
    fn scan_resume_quarantines_damaged_checkpoints() {
        let mut cfg = StudyConfig::quick();
        cfg.scan_hosts = 100;
        cfg.workers = 2;
        cfg.scan_faults = ScanFaults::scan_defaults();
        let expected = Study::new(cfg.clone()).run_active();

        let dir = unique_dir("scan-quarantine");
        cfg.scan_checkpoint_dir = Some(dir.clone());
        let _ = Study::new(cfg.clone()).run_active();
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let total = files.len();
        // Truncate the first checkpoint mid-file.
        let victim = &files[0];
        let text = std::fs::read_to_string(victim).unwrap();
        std::fs::write(victim, &text[..text.len() / 2]).unwrap();

        let metrics = ScanMetrics::new();
        let resumed = Study::new(cfg).try_run_active_metered(&metrics).unwrap();
        assert_eq!(resumed, expected);
        let s = metrics.snapshot();
        assert_eq!(s.checkpoints_quarantined, 1);
        assert_eq!(s.checkpoints_loaded, (total - 1) as u64);
        assert_eq!(s.checkpoints_written, 1);
        let bad = victim.with_extension("ckpt.bad");
        assert!(bad.exists(), "damaged file parked at {}", bad.display());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_checkpoint_io_errors_surface_as_errors() {
        let mut cfg = StudyConfig::quick();
        cfg.scan_hosts = 60;
        // A file where the scan checkpoint directory should be.
        let path = unique_dir("scan-clash");
        std::fs::write(&path, "not a directory").unwrap();
        cfg.scan_checkpoint_dir = Some(path.clone());
        let err = Study::new(cfg).try_run_active_metered(&ScanMetrics::new());
        assert!(err.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// The passive runner reports loaded / quarantined / written
    /// checkpoint counts through the pipeline metrics.
    #[test]
    fn passive_resume_reports_recovery_counters() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2016, 6);
        cfg.end = Month::ym(2016, 9);
        cfg.connections_per_month = 150;
        cfg.workers = 2;
        cfg.faults = FaultInjector::none();
        let expected = Study::new(cfg.clone()).run_passive();

        let dir = unique_dir("passive-quarantine");
        cfg.checkpoint_dir = Some(dir.clone());
        let _ = Study::new(cfg.clone()).run_passive();
        // Bit-flip one month's checkpoint body.
        let victim = dir.join("2016-07.ckpt");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        let metrics = PipelineMetrics::new();
        let resumed = Study::new(cfg).try_run_passive_metered(&metrics).unwrap();
        assert_eq!(resumed, expected);
        let s = metrics.snapshot();
        assert_eq!(s.checkpoints_loaded, 3);
        assert_eq!(s.checkpoints_quarantined, 1);
        assert_eq!(s.checkpoints_written, 1);
        assert!(victim.with_extension("ckpt.bad").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metered_run_accounts_every_flow() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2017, 1);
        cfg.end = Month::ym(2017, 3);
        cfg.connections_per_month = 250;
        cfg.workers = 2;
        let study = Study::new(cfg);
        let metrics = PipelineMetrics::new();
        let agg = study.run_passive_metered(&metrics);
        let s = metrics.snapshot();
        assert_eq!(s.flows_generated, s.flows_dispatched);
        assert_eq!(s.flows_dispatched, s.flows_ingested);
        assert_eq!(s.flows_lost(), 0);
        assert_eq!(s.shards_lost, 0);
        // One accounting batch per month shard.
        assert_eq!(s.batches_ingested, 3);
        assert_eq!(
            s.flows_ingested,
            agg.total() + agg.not_tls + agg.garbled_client
        );
        assert!(s.gen_nanos > 0 && s.ingest_nanos > 0);
    }
}
