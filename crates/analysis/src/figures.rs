//! Figure generators: one function per figure of the paper, each
//! consuming the passive aggregate and emitting a [`Figure`].

use tlscope_chron::Month;
use tlscope_notary::NotaryAggregate;

use crate::attacks::{ATTACKS, RC4_DROPS};
use crate::series::{Annotation, Figure, Series};

fn axis(agg: &NotaryAggregate) -> Vec<Month> {
    agg.iter_months().map(|(m, _)| *m).collect()
}

fn collect(agg: &NotaryAggregate, f: impl Fn(&tlscope_notary::MonthlyStats) -> f64) -> Vec<f64> {
    agg.iter_months().map(|(_, s)| f(s)).collect()
}

fn attack_annotations(names: &[&str]) -> Vec<Annotation> {
    ATTACKS
        .iter()
        .filter(|a| names.contains(&a.name))
        .map(|a| Annotation {
            date: a.date,
            label: a.name.to_string(),
        })
        .collect()
}

const FIGURE_EVENTS: &[&str] = &[
    "Lucky13",
    "POODLE",
    "RC4",
    "Snowden",
    "RC4 passwords",
    "RC4 no more",
    "Sweet32",
];

/// Figure 1: negotiated SSL/TLS versions, percent of monthly
/// connections.
pub fn fig1(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig1",
        "Negotiated SSL/TLS versions (% monthly connections)",
        axis(agg),
    );
    fig.push_series(Series::new(
        "SSLv3",
        collect(agg, |s| s.pct(s.neg_version.ssl3)),
    ));
    fig.push_series(Series::new(
        "TLSv10",
        collect(agg, |s| s.pct(s.neg_version.tls10)),
    ));
    fig.push_series(Series::new(
        "TLSv11",
        collect(agg, |s| s.pct(s.neg_version.tls11)),
    ));
    fig.push_series(Series::new(
        "TLSv12",
        collect(agg, |s| s.pct(s.neg_version.tls12)),
    ));
    fig.push_series(Series::new(
        "TLSv13",
        collect(agg, |s| s.pct(s.neg_version.tls13)),
    ));
    fig.annotations = attack_annotations(FIGURE_EVENTS);
    fig
}

/// Figure 2: negotiated RC4 / CBC / AEAD, percent of monthly
/// connections.
pub fn fig2(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig2",
        "Negotiated RC4 / CBC / AEAD (% monthly connections)",
        axis(agg),
    );
    fig.push_series(Series::new("AEAD", collect(agg, |s| s.pct(s.neg_aead))));
    fig.push_series(Series::new("CBC", collect(agg, |s| s.pct(s.neg_cbc))));
    fig.push_series(Series::new("RC4", collect(agg, |s| s.pct(s.neg_rc4))));
    fig.annotations = attack_annotations(FIGURE_EVENTS);
    fig
}

/// Figure 3: connections whose client advertises RC4 / DES / 3DES /
/// AEAD.
pub fn fig3(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig3",
        "Client-advertised RC4 / DES / 3DES / AEAD (% monthly connections)",
        axis(agg),
    );
    fig.push_series(Series::new("AEAD", collect(agg, |s| s.pct(s.adv_aead))));
    fig.push_series(Series::new("RC4", collect(agg, |s| s.pct(s.adv_rc4))));
    fig.push_series(Series::new("DES", collect(agg, |s| s.pct(s.adv_des))));
    fig.push_series(Series::new("3DES", collect(agg, |s| s.pct(s.adv_3des))));
    fig.push_series(Series::new("CBC", collect(agg, |s| s.pct(s.adv_cbc))));
    fig.annotations = attack_annotations(FIGURE_EVENTS);
    fig
}

/// Figure 4: distinct monthly fingerprints supporting RC4 / DES / 3DES /
/// AEAD. The paper restricts this to the fingerprintable era
/// (2014-02 onwards); earlier months are emitted as NaN.
pub fn fig4(agg: &NotaryAggregate) -> Figure {
    let cutoff = Month::ym(2014, 2);
    let months = axis(agg);
    let mut fig = Figure::new(
        "fig4",
        "Fingerprints supporting RC4 / DES / 3DES / AEAD (% monthly fingerprints)",
        months.clone(),
    );
    let gated = |f: fn(&tlscope_notary::FpClassFlags) -> bool| -> Vec<f64> {
        agg.iter_months()
            .map(|(m, s)| {
                if *m < cutoff {
                    f64::NAN
                } else {
                    s.pct_fingerprints(f)
                }
            })
            .collect()
    };
    fig.push_series(Series::new("AEAD", gated(|f| f.aead)));
    fig.push_series(Series::new("RC4", gated(|f| f.rc4)));
    fig.push_series(Series::new("DES", gated(|f| f.des)));
    fig.push_series(Series::new("3DES", gated(|f| f.tdes)));
    fig.push_series(Series::new("CBC", gated(|f| f.cbc)));
    fig.annotations = attack_annotations(&["POODLE", "RC4 passwords", "RC4 no more", "Sweet32"]);
    fig
}

/// Figure 5: average relative position of the first AEAD / CBC / RC4 /
/// DES / 3DES suite in client offers (fingerprintable era).
pub fn fig5(agg: &NotaryAggregate) -> Figure {
    let cutoff = Month::ym(2014, 2);
    let mut fig = Figure::new(
        "fig5",
        "Average relative position of first offered suite per class (%)",
        axis(agg),
    );
    let gated = |pick: fn(&tlscope_notary::MonthlyStats) -> Option<f64>| -> Vec<f64> {
        agg.iter_months()
            .map(|(m, s)| {
                if *m < cutoff {
                    f64::NAN
                } else {
                    pick(s).unwrap_or(f64::NAN)
                }
            })
            .collect()
    };
    fig.push_series(Series::new("AEAD", gated(|s| s.pos_aead.mean_pct())));
    fig.push_series(Series::new("CBC", gated(|s| s.pos_cbc.mean_pct())));
    fig.push_series(Series::new("RC4", gated(|s| s.pos_rc4.mean_pct())));
    fig.push_series(Series::new("DES", gated(|s| s.pos_des.mean_pct())));
    fig.push_series(Series::new("3DES", gated(|s| s.pos_3des.mean_pct())));
    fig
}

/// Figure 6: percent of connections advertising RC4, annotated with
/// attack dates and browser drop dates.
pub fn fig6(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "Connections advertising RC4 (%), with browser drop dates",
        axis(agg),
    );
    fig.push_series(Series::new("RC4", collect(agg, |s| s.pct(s.adv_rc4))));
    fig.annotations = attack_annotations(&["RC4", "RC4 passwords", "RC4 no more"]);
    fig.annotations.extend(RC4_DROPS.iter().map(|e| Annotation {
        date: e.date,
        label: e.name.to_string(),
    }));
    fig
}

/// Figure 7: percent of connections advertising Export / Anonymous /
/// NULL suites.
pub fn fig7(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig7",
        "Connections advertising Export / Anonymous / NULL suites (%)",
        axis(agg),
    );
    fig.push_series(Series::new("Export", collect(agg, |s| s.pct(s.adv_export))));
    fig.push_series(Series::new(
        "Anonymous",
        collect(agg, |s| s.pct(s.adv_anon)),
    ));
    fig.push_series(Series::new("Null", collect(agg, |s| s.pct(s.adv_null))));
    fig
}

/// Figure 8: negotiated key exchange: RSA / DHE / ECDHE.
pub fn fig8(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig8",
        "Negotiated RSA vs forward-secret key exchange (% monthly connections)",
        axis(agg),
    );
    fig.push_series(Series::new("RSA", collect(agg, |s| s.pct(s.neg_kx.rsa))));
    fig.push_series(Series::new("DHE", collect(agg, |s| s.pct(s.neg_kx.dhe))));
    fig.push_series(Series::new(
        "ECDHE",
        collect(agg, |s| s.pct(s.neg_kx.ecdhe + s.neg_kx.tls13)),
    ));
    fig.annotations = attack_annotations(&["Snowden"]);
    fig
}

/// Figure 9: negotiated AEAD breakdown.
pub fn fig9(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig9",
        "Negotiated AEAD ciphers (% monthly connections)",
        axis(agg),
    );
    fig.push_series(Series::new(
        "AEAD Total",
        collect(agg, |s| s.pct(s.neg_aead_alg.total())),
    ));
    fig.push_series(Series::new(
        "AES128-GCM",
        collect(agg, |s| s.pct(s.neg_aead_alg.aes128gcm)),
    ));
    fig.push_series(Series::new(
        "AES256-GCM",
        collect(agg, |s| s.pct(s.neg_aead_alg.aes256gcm)),
    ));
    fig.push_series(Series::new(
        "ChaCha20-Poly1305",
        collect(agg, |s| s.pct(s.neg_aead_alg.chacha)),
    ));
    fig
}

/// Figure 10: advertised AEAD breakdown (plus AES-CCM).
pub fn fig10(agg: &NotaryAggregate) -> Figure {
    let mut fig = Figure::new(
        "fig10",
        "Connections advertising AEAD ciphers (%)",
        axis(agg),
    );
    fig.push_series(Series::new(
        "AES128-GCM",
        collect(agg, |s| s.pct(s.adv_aead_alg.aes128gcm)),
    ));
    fig.push_series(Series::new(
        "AES256-GCM",
        collect(agg, |s| s.pct(s.adv_aead_alg.aes256gcm)),
    ));
    fig.push_series(Series::new(
        "ChaCha20-Poly1305",
        collect(agg, |s| s.pct(s.adv_aead_alg.chacha)),
    ));
    fig.push_series(Series::new(
        "AES-CCM",
        collect(agg, |s| s.pct(s.adv_aead_alg.ccm)),
    ));
    fig
}

/// Every figure in order.
pub fn all_figures(agg: &NotaryAggregate) -> Vec<Figure> {
    vec![
        fig1(agg),
        fig2(agg),
        fig3(agg),
        fig4(agg),
        fig5(agg),
        fig6(agg),
        fig7(agg),
        fig8(agg),
        fig9(agg),
        fig10(agg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::aggregate;

    const RC4: u16 = 0x0005;
    const AEAD: u16 = 0xc02f;
    const CBC: u16 = 0xc013;
    const TDES: u16 = 0x000a;

    fn months() -> Vec<Month> {
        Month::ym(2015, 1)
            .iter_through(Month::ym(2015, 3))
            .collect()
    }

    #[test]
    fn fig1_counts_versions() {
        let agg = aggregate(&months(), &[(&[AEAD], Some(AEAD))], 10);
        let fig = fig1(&agg);
        assert_eq!(fig.months.len(), 3);
        // Everything negotiated TLS 1.2.
        assert_eq!(fig.value_at("TLSv12", Month::ym(2015, 2)), Some(100.0));
        assert_eq!(fig.value_at("TLSv10", Month::ym(2015, 2)), Some(0.0));
        assert!(!fig.annotations.is_empty());
    }

    #[test]
    fn fig2_partitions_classes() {
        let agg = aggregate(
            &months(),
            &[
                (&[RC4], Some(RC4)),
                (&[AEAD], Some(AEAD)),
                (&[CBC], Some(CBC)),
                (&[CBC], None),
            ],
            5,
        );
        let fig = fig2(&agg);
        let m = Month::ym(2015, 1);
        // 20 connections/month: 5 each; 5 rejected.
        assert_eq!(fig.value_at("RC4", m), Some(25.0));
        assert_eq!(fig.value_at("AEAD", m), Some(25.0));
        assert_eq!(fig.value_at("CBC", m), Some(25.0));
    }

    #[test]
    fn fig3_counts_advertisers_not_negotiations() {
        let agg = aggregate(
            &months(),
            &[(&[RC4, AEAD, TDES], Some(AEAD)), (&[AEAD], Some(AEAD))],
            5,
        );
        let fig = fig3(&agg);
        let m = Month::ym(2015, 2);
        assert_eq!(fig.value_at("RC4", m), Some(50.0));
        assert_eq!(fig.value_at("AEAD", m), Some(100.0));
        assert_eq!(fig.value_at("3DES", m), Some(50.0));
    }

    #[test]
    fn fig4_is_fingerprint_level_and_gated() {
        // One RC4-offering fingerprint with heavy traffic, one clean
        // fingerprint with light traffic: per-connection RC4 is 90%,
        // per-fingerprint RC4 is 50%.
        let mut agg = aggregate(&[Month::ym(2015, 1)], &[(&[RC4, CBC], Some(CBC))], 9);
        {
            let rec = crate::tests_support::record(
                tlscope_chron::Date::ymd(2015, 1, 5),
                &[AEAD],
                Some(AEAD),
            );
            agg.ingest(&rec);
        }
        let fig = fig4(&agg);
        assert_eq!(fig.value_at("RC4", Month::ym(2015, 1)), Some(50.0));

        // Months before 2014-02 are NaN (Notary had no FP fields).
        let early = aggregate(&[Month::ym(2013, 1)], &[(&[RC4], Some(RC4))], 3);
        let fig = fig4(&early);
        assert_eq!(fig.value_at("RC4", Month::ym(2013, 1)), None);
    }

    #[test]
    fn fig5_positions() {
        // Offer [AEAD, CBC, RC4, 3DES]: positions 0, 25, 50, 75 %.
        let agg = aggregate(&months(), &[(&[AEAD, CBC, RC4, TDES], Some(AEAD))], 4);
        let fig = fig5(&agg);
        let m = Month::ym(2015, 3);
        assert_eq!(fig.value_at("AEAD", m), Some(0.0));
        assert_eq!(fig.value_at("CBC", m), Some(25.0));
        assert_eq!(fig.value_at("RC4", m), Some(50.0));
        assert_eq!(fig.value_at("3DES", m), Some(75.0));
    }

    #[test]
    fn fig6_has_browser_drop_annotations() {
        let agg = aggregate(&months(), &[(&[RC4], Some(RC4))], 2);
        let fig = fig6(&agg);
        assert!(fig.annotations.iter().any(|a| a.label.contains("Chrome")));
        assert!(fig.annotations.iter().any(|a| a.label.contains("Safari")));
    }

    #[test]
    fn fig8_kx_buckets() {
        // 0x002f = RSA kx, 0xc02f = ECDHE, 0x0033 = DHE.
        let agg = aggregate(
            &months(),
            &[
                (&[0x002f], Some(0x002f)),
                (&[0xc02f], Some(0xc02f)),
                (&[0x0033], Some(0x0033)),
                (&[0x0033], Some(0x0033)),
            ],
            1,
        );
        let fig = fig8(&agg);
        let m = Month::ym(2015, 1);
        assert_eq!(fig.value_at("RSA", m), Some(25.0));
        assert_eq!(fig.value_at("ECDHE", m), Some(25.0));
        assert_eq!(fig.value_at("DHE", m), Some(50.0));
    }

    #[test]
    fn fig9_fig10_aead_algorithms() {
        // 0xc02f AES128-GCM, 0xc030 AES256-GCM, 0xcca8 ChaCha.
        let agg = aggregate(&months(), &[(&[0xc02f, 0xc030, 0xcca8], Some(0xc030))], 4);
        let m = Month::ym(2015, 2);
        let f9 = fig9(&agg);
        assert_eq!(f9.value_at("AES256-GCM", m), Some(100.0));
        assert_eq!(f9.value_at("AES128-GCM", m), Some(0.0));
        let f10 = fig10(&agg);
        assert_eq!(f10.value_at("AES128-GCM", m), Some(100.0));
        assert_eq!(f10.value_at("ChaCha20-Poly1305", m), Some(100.0));
        assert_eq!(f10.value_at("AES-CCM", m), Some(0.0));
    }

    #[test]
    fn all_figures_share_axis() {
        let agg = aggregate(&months(), &[(&[AEAD], Some(AEAD))], 2);
        for fig in all_figures(&agg) {
            assert_eq!(fig.months.len(), 3, "{}", fig.id);
        }
    }
}
