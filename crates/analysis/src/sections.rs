//! Section-level analyses: the in-text numbers of §4–§6 that are not
//! figures or tables, each rendered as a small [`Table`].

use tlscope_chron::Month;
use tlscope_notary::NotaryAggregate;
use tlscope_scanner::{ScanMetricsSnapshot, ScanSnapshot};

use crate::series::{Figure, Series, Table};

fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// §4.1: fingerprint lifetime statistics.
pub fn s4_1(agg: &NotaryAggregate) -> Table {
    let stats = agg.sightings.stats(1200);
    let mut t = Table::new(
        "s4.1",
        "Fingerprint lifetimes (paper: median 1 d, mean 158.8 d, 42,188/69,874 single-day)",
        vec!["Metric", "Value"],
    );
    t.push_row(vec!["fingerprints".into(), stats.fingerprints.to_string()]);
    t.push_row(vec![
        "max duration (days)".into(),
        stats.max_days.to_string(),
    ]);
    t.push_row(vec![
        "median duration (days)".into(),
        format!("{:.1}", stats.median_days),
    ]);
    t.push_row(vec![
        "mean duration (days)".into(),
        format!("{:.1}", stats.mean_days),
    ]);
    t.push_row(vec![
        "3rd quartile (days)".into(),
        format!("{:.1}", stats.q3_days),
    ]);
    t.push_row(vec![
        "std deviation (days)".into(),
        format!("{:.1}", stats.stddev_days),
    ]);
    t.push_row(vec![
        "single-day fingerprints".into(),
        format!(
            "{} ({:.1}% of fingerprints, {} connections)",
            stats.single_day,
            100.0 * stats.single_day as f64 / stats.fingerprints.max(1) as f64,
            stats.single_day_connections
        ),
    ]);
    t.push_row(vec![
        format!("fingerprints seen > {} days", stats.long_threshold_days),
        format!(
            "{} (carrying {:.2}% of connections)",
            stats.long_lived,
            stats.long_lived_traffic_pct()
        ),
    ]);
    t
}

/// §5.1: legacy SSL versions in the passive data and in scans.
pub fn s5_1(agg: &NotaryAggregate, scans: &[ScanSnapshot]) -> Table {
    let mut t = Table::new(
        "s5.1",
        "Legacy SSL (paper: SSL2 ~1.2K conns and SSL3 <0.01% in 2018-02; Censys SSL3 45% -> <25%)",
        vec!["Metric", "Value"],
    );
    let feb18 = agg.month(Month::ym(2018, 2));
    if let Some(m) = feb18 {
        t.push_row(vec![
            "SSL2 connections 2018-02".into(),
            format!("{} ({:.4}%)", m.neg_version.ssl2, m.pct(m.neg_version.ssl2)),
        ]);
        t.push_row(vec![
            "SSL3 connections 2018-02".into(),
            format!("{} ({:.4}%)", m.neg_version.ssl3, m.pct(m.neg_version.ssl3)),
        ]);
    }
    let lifetime_ssl3: u64 = agg.iter_months().map(|(_, s)| s.neg_version.ssl3).sum();
    t.push_row(vec![
        "SSL3 connections lifetime".into(),
        lifetime_ssl3.to_string(),
    ]);
    if let (Some(first), Some(last)) = (scans.first(), scans.last()) {
        t.push_row(vec![
            format!("Censys SSL3 support {}", first.date),
            pct(first.pct(first.ssl3_supported)),
        ]);
        t.push_row(vec![
            format!("Censys SSL3 support {}", last.date),
            pct(last.pct(last.ssl3_supported)),
        ]);
    }
    t
}

/// §5.4: Heartbleed and the Heartbeat extension.
pub fn s5_4(agg: &NotaryAggregate, scans: &[ScanSnapshot]) -> Table {
    let mut t = Table::new(
        "s5.4",
        "Heartbleed (paper: 0.32% still vulnerable 2018-05; 34% support heartbeat; 3% of connections negotiate it)",
        vec!["Metric", "Value"],
    );
    if let Some(last) = scans.last() {
        t.push_row(vec![
            format!("hosts heartbeat-capable {}", last.date),
            pct(last.pct(last.heartbeat_supported)),
        ]);
        t.push_row(vec![
            format!("hosts Heartbleed-vulnerable {}", last.date),
            pct(last.pct(last.heartbleed_vulnerable)),
        ]);
    }
    // Vulnerability right around disclosure, if the campaign covers it
    // (the Censys window starts later; the passive window shows the
    // extension's use instead).
    if let Some(m) = agg.month(Month::ym(2018, 3)) {
        t.push_row(vec![
            "connections negotiating heartbeat 2018-03".into(),
            pct(m.pct(m.heartbeat_negotiated)),
        ]);
        t.push_row(vec![
            "connections offering heartbeat 2018-03".into(),
            pct(m.pct(m.adv_heartbeat)),
        ]);
    }
    t
}

/// §5.5: export ciphers — advertised vs negotiated.
pub fn s5_5(agg: &NotaryAggregate) -> Table {
    let mut t = Table::new(
        "s5.5",
        "Export ciphers (paper: advertised 28.19% in 2012 -> 1.03% in 2018; negotiated ~677 conns in 2018)",
        vec!["Metric", "Value"],
    );
    if let Some(m) = agg.month(Month::ym(2012, 6)) {
        t.push_row(vec!["advertised 2012-06".into(), pct(m.pct(m.adv_export))]);
    }
    if let Some(m) = agg.month(Month::ym(2018, 2)) {
        t.push_row(vec!["advertised 2018-02".into(), pct(m.pct(m.adv_export))]);
    }
    let neg_2018: u64 = agg
        .iter_months()
        .filter(|(m, _)| m.year() == 2018)
        .map(|(_, s)| s.neg_export)
        .sum();
    let total_2018: u64 = agg
        .iter_months()
        .filter(|(m, _)| m.year() == 2018)
        .map(|(_, s)| s.total)
        .sum();
    t.push_row(vec![
        "negotiated in 2018".into(),
        format!(
            "{} of {} conns ({:.4}%)",
            neg_2018,
            total_2018,
            if total_2018 == 0 {
                0.0
            } else {
                100.0 * neg_2018 as f64 / total_2018 as f64
            }
        ),
    ]);
    t
}

/// §5.6: 3DES negotiation and advertising.
pub fn s5_6(agg: &NotaryAggregate, scans: &[ScanSnapshot]) -> Table {
    let mut t = Table::new(
        "s5.6",
        "Sweet32 / 3DES (paper: negotiated 1.4% in 2012 -> 0.3% in 2018; ~70% of clients still offer it; Censys chosen 0.54% -> 0.25%)",
        vec!["Metric", "Value"],
    );
    for (label, month) in [
        ("2012-07", Month::ym(2012, 7)),
        ("2018-02", Month::ym(2018, 2)),
    ] {
        if let Some(m) = agg.month(month) {
            t.push_row(vec![
                format!("negotiated 3DES {label}"),
                pct(m.pct_answered(m.neg_3des)),
            ]);
            t.push_row(vec![
                format!("advertised 3DES {label}"),
                pct(m.pct(m.adv_3des)),
            ]);
        }
    }
    if let (Some(first), Some(last)) = (scans.first(), scans.last()) {
        t.push_row(vec![
            format!("Censys hosts choosing 3DES {}", first.date),
            pct(first.pct(first.chose_3des)),
        ]);
        t.push_row(vec![
            format!("Censys hosts choosing 3DES {}", last.date),
            pct(last.pct(last.chose_3des)),
        ]);
    }
    t
}

/// §6.1: NULL cipher suites.
pub fn s6_1(agg: &NotaryAggregate) -> Table {
    let mut t = Table::new(
        "s6.1",
        "NULL ciphers (paper: 2.84% of lifetime conns negotiated NULL — nearly all GRID; 0.42% in 2018)",
        vec!["Metric", "Value"],
    );
    let lifetime_null: u64 = agg.iter_months().map(|(_, s)| s.neg_null).sum();
    let lifetime_total: u64 = agg.iter_months().map(|(_, s)| s.total).sum();
    t.push_row(vec![
        "negotiated NULL lifetime".into(),
        format!(
            "{:.2}%",
            100.0 * lifetime_null as f64 / lifetime_total.max(1) as f64
        ),
    ]);
    let null_2018: u64 = agg
        .iter_months()
        .filter(|(m, _)| m.year() == 2018)
        .map(|(_, s)| s.neg_null)
        .sum();
    let total_2018: u64 = agg
        .iter_months()
        .filter(|(m, _)| m.year() == 2018)
        .map(|(_, s)| s.total)
        .sum();
    t.push_row(vec![
        "negotiated NULL 2018".into(),
        format!(
            "{:.2}%",
            100.0 * null_2018 as f64 / total_2018.max(1) as f64
        ),
    ]);
    if let Some(m) = agg.month(Month::ym(2018, 2)) {
        t.push_row(vec![
            "connections offering NULL 2018-02".into(),
            pct(m.pct(m.adv_null)),
        ]);
        t.push_row(vec![
            "fingerprints offering NULL 2018-02".into(),
            pct(m.pct_fingerprints(|f| f.null)),
        ]);
    }
    let null_null: u64 = agg.iter_months().map(|(_, s)| s.neg_null_null).sum();
    t.push_row(vec![
        "NULL_WITH_NULL_NULL connections lifetime".into(),
        null_null.to_string(),
    ]);
    t
}

/// §6.2: anonymous cipher suites.
pub fn s6_2(agg: &NotaryAggregate) -> Table {
    let mut t = Table::new(
        "s6.2",
        "Anonymous ciphers (paper: advertised spike 5.8% -> 12.9% mid-2015; negotiated 0.17% lifetime, 0.60% in 2018)",
        vec!["Metric", "Value"],
    );
    for (label, month) in [
        ("advertised 2015-04", Month::ym(2015, 4)),
        ("advertised 2015-07", Month::ym(2015, 7)),
        ("advertised 2018-02", Month::ym(2018, 2)),
    ] {
        if let Some(m) = agg.month(month) {
            t.push_row(vec![label.into(), pct(m.pct(m.adv_anon))]);
        }
    }
    let lt_anon: u64 = agg.iter_months().map(|(_, s)| s.neg_anon).sum();
    let lt_total: u64 = agg.iter_months().map(|(_, s)| s.total).sum();
    t.push_row(vec![
        "negotiated anon lifetime".into(),
        format!("{:.2}%", 100.0 * lt_anon as f64 / lt_total.max(1) as f64),
    ]);
    let anon_2018: u64 = agg
        .iter_months()
        .filter(|(m, _)| m.year() == 2018)
        .map(|(_, s)| s.neg_anon)
        .sum();
    let total_2018: u64 = agg
        .iter_months()
        .filter(|(m, _)| m.year() == 2018)
        .map(|(_, s)| s.total)
        .sum();
    t.push_row(vec![
        "negotiated anon 2018".into(),
        format!(
            "{:.2}%",
            100.0 * anon_2018 as f64 / total_2018.max(1) as f64
        ),
    ]);
    t
}

/// §6.3.3: negotiated-curve distribution.
pub fn s6_3(agg: &NotaryAggregate) -> Table {
    let mut lifetime: std::collections::HashMap<u16, u64> = std::collections::HashMap::new();
    for (_, s) in agg.iter_months() {
        for (curve, n) in &s.curves {
            *lifetime.entry(*curve).or_insert(0) += n;
        }
    }
    let total: u64 = lifetime.values().sum();
    let mut rows: Vec<(u16, u64)> = lifetime.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let mut t = Table::new(
        "s6.3",
        "Negotiated curves (paper: secp256r1 84.4%, secp384r1 8.6%, x25519 6.7%, sect571r1 0.2%, secp521r1 0.1%; x25519 22.2% in 2018-02)",
        vec!["Curve", "Lifetime share"],
    );
    for (curve, n) in rows.iter().take(6).filter(|(_, n)| *n > 0) {
        let name = tlscope_wire::NamedGroup(*curve)
            .name()
            .unwrap_or("unknown")
            .to_string();
        t.push_row(vec![
            name,
            format!("{:.2}%", 100.0 * *n as f64 / total.max(1) as f64),
        ]);
    }
    if let Some(m) = agg.month(Month::ym(2018, 2)) {
        t.push_row(vec!["x25519 share 2018-02".into(), pct(m.pct_curve(29))]);
    }
    t
}

/// §6.4: TLS 1.3 advertising, negotiation, and the draft-version mix.
pub fn s6_4(agg: &NotaryAggregate) -> Table {
    let mut t = Table::new(
        "s6.4",
        "TLS 1.3 (paper: advertised 0.5% 2018-02 -> 9.8% 2018-03 -> 23.6% 2018-04; negotiated 1.3% 2018-04; 0x7e02 82.3% of supported_versions, draft-18 13.4%)",
        vec!["Metric", "Value"],
    );
    for month in [Month::ym(2018, 2), Month::ym(2018, 3), Month::ym(2018, 4)] {
        if let Some(m) = agg.month(month) {
            t.push_row(vec![
                format!("advertised 1.3 {month}"),
                pct(m.pct(m.adv_tls13)),
            ]);
        }
    }
    if let Some(m) = agg.month(Month::ym(2018, 4)) {
        t.push_row(vec![
            "negotiated 1.3 2018-04".into(),
            pct(m.pct(m.neg_version.tls13)),
        ]);
    }
    // Draft-version mix among all 1.3-family supported_versions values
    // across the whole window (the paper's 82.3 % / 13.4 % are lifetime
    // shares of connections carrying the extension).
    let mut mix: std::collections::HashMap<u16, u64> = std::collections::HashMap::new();
    for (_, s) in agg.iter_months() {
        for (v, n) in &s.supported_versions_values {
            if tlscope_wire::ProtocolVersion::from_wire(*v).is_tls13_family() {
                *mix.entry(*v).or_insert(0) += n;
            }
        }
    }
    let total13: u64 = mix.values().sum();
    for (wire, label) in [
        (0x7e02u16, "0x7e02 (Google exp.)"),
        (0x7f12, "draft-18"),
        (0x7f1c, "draft-28"),
        (0x7f1a, "draft-26"),
    ] {
        let n = *mix.get(&wire).unwrap_or(&0);
        if n > 0 {
            t.push_row(vec![
                format!("{label} share of 1.3 offers (lifetime)"),
                format!("{:.1}%", 100.0 * n as f64 / total13.max(1) as f64),
            ]);
        }
    }
    t
}

/// §7.3: out-of-spec servers (GOST, unoffered-cipher choices).
pub fn s7_3(agg: &NotaryAggregate) -> Table {
    let mut t = Table::new(
        "s7.3",
        "Out-of-spec servers: suites chosen that the client never offered",
        vec!["Metric", "Value"],
    );
    let unoffered: u64 = agg.iter_months().map(|(_, s)| s.neg_unoffered).sum();
    let total: u64 = agg.iter_months().map(|(_, s)| s.total).sum();
    t.push_row(vec![
        "connections with unoffered suite chosen".into(),
        format!(
            "{} ({:.4}%)",
            unoffered,
            100.0 * unoffered as f64 / total.max(1) as f64
        ),
    ]);
    t
}

/// §9's closing observations, made concrete: deployment of the
/// renegotiation_info extension (the renegotiation-attack response),
/// the very limited uptake of Encrypt-then-MAC (the Lucky 13 response),
/// and for context the adoption of SNI and extended_master_secret.
pub fn s9_extensions(agg: &NotaryAggregate) -> Figure {
    use tlscope_wire::exts::ext_type;
    let months: Vec<Month> = agg.iter_months().map(|(m, _)| *m).collect();
    let mut fig = Figure::new(
        "s9-ext",
        "Extension deployment (% monthly connections advertising)",
        months,
    );
    let grab = |typ: u16| -> Vec<f64> {
        agg.iter_months()
            .map(|(_, s)| s.pct(*s.adv_extensions.get(&typ).unwrap_or(&0)))
            .collect()
    };
    fig.push_series(Series::new(
        "renegotiation_info",
        grab(ext_type::RENEGOTIATION_INFO),
    ));
    fig.push_series(Series::new(
        "encrypt_then_mac",
        grab(ext_type::ENCRYPT_THEN_MAC),
    ));
    fig.push_series(Series::new("server_name", grab(ext_type::SERVER_NAME)));
    fig.push_series(Series::new(
        "extended_master_secret",
        grab(ext_type::EXTENDED_MASTER_SECRET),
    ));
    fig.push_series(Series::new(
        "session_ticket",
        grab(ext_type::SESSION_TICKET),
    ));
    fig.push_series(Series::new("heartbeat", grab(ext_type::HEARTBEAT)));
    fig
}

/// SSL Pulse analogue (§5.3): RC4 support among popular sites.
pub fn ssl_pulse(pulses: &[tlscope_scanner::PulseSnapshot]) -> Table {
    let mut t = Table::new(
        "ssl-pulse",
        "SSL Pulse analogue (paper: RC4 supported by 92.8% of popular sites in 2013-10 -> 19.1% in 2018; RC4-only sites 4,248 -> 1)",
        vec!["Date", "RC4 supported", "RC4-only sites"],
    );
    for p in pulses {
        t.push_row(vec![
            p.date.to_string(),
            format!("{:.1}%", p.pct(p.rc4_supported)),
            p.rc4_only.to_string(),
        ]);
    }
    t
}

/// Scan-engine accounting (§3.2 operational view): the dispatch /
/// probe / handshake ledger of the active campaign, the analogue of
/// the Censys pipeline health counters. Loss is a normal, measured
/// outcome — dropped hosts, timed-out probes, retries, and lost
/// workers all get rows — and the final row states whether the
/// two-part ledger (`dispatched == probed + dropped`, `completed +
/// refused + timed_out == sent`) balanced.
pub fn scan_accounting(s: &ScanMetricsSnapshot) -> Table {
    let mut t = Table::new(
        "scan-accounting",
        "Active-scan accounting (sharded sweep engine; dispatched == probed + dropped and completed + refused + timed_out == sent are the engine invariants)",
        vec!["Counter", "Value"],
    );
    let rows: [(&str, String); 12] = [
        ("sweeps completed", s.sweeps_completed.to_string()),
        ("hosts dispatched", s.hosts_dispatched.to_string()),
        ("hosts probed", s.hosts_probed.to_string()),
        ("hosts dropped", s.hosts_dropped.to_string()),
        ("host retries", s.host_retries.to_string()),
        ("probes sent", s.probes_sent.to_string()),
        ("handshakes completed", s.handshakes_completed.to_string()),
        ("handshakes refused", s.handshakes_refused.to_string()),
        ("probes timed out", s.probes_timed_out.to_string()),
        ("workers lost", s.workers_lost.to_string()),
        ("hosts/s (cpu)", format!("{:.0}", s.hosts_per_sec())),
        (
            "accounting holds",
            if s.accounting_holds() { "yes" } else { "NO" }.to_string(),
        ),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    t
}

/// Censys over-time series (the §5 scan trends) as a figure-like
/// object over scan dates collapsed to months.
pub fn censys_series(scans: &[ScanSnapshot]) -> Figure {
    let months: Vec<Month> = scans.iter().map(|s| s.date.month()).collect();
    let mut fig = Figure::new(
        "censys",
        "Censys host-level trends (% of probed hosts)",
        months,
    );
    let grab =
        |f: fn(&ScanSnapshot) -> u64| -> Vec<f64> { scans.iter().map(|s| s.pct(f(s))).collect() };
    fig.push_series(Series::new("SSL3 supported", grab(|s| s.ssl3_supported)));
    fig.push_series(Series::new("chose CBC", grab(|s| s.chose_cbc)));
    fig.push_series(Series::new("chose RC4", grab(|s| s.chose_rc4)));
    fig.push_series(Series::new("chose AEAD", grab(|s| s.chose_aead)));
    fig.push_series(Series::new("chose 3DES", grab(|s| s.chose_3des)));
    fig.push_series(Series::new(
        "heartbeat supported",
        grab(|s| s.heartbeat_supported),
    ));
    fig.push_series(Series::new(
        "heartbleed vulnerable",
        grab(|s| s.heartbleed_vulnerable),
    ));
    fig.push_series(Series::new(
        "export supported",
        grab(|s| s.export_supported),
    ));
    fig
}
