//! Attack-impact quantification (§7.4).
//!
//! The paper reasons qualitatively about which disclosures moved the
//! ecosystem ("sometimes spectacular, sometimes quite slow"). We make
//! that judgement mechanical: for each attack and each relevant series,
//! compare the series' mean slope in the year before the disclosure to
//! the year after. A strongly more-negative post-slope on, say, the
//! RC4-negotiation series quantifies "the ecosystem reacted".
//!
//! A simple CUSUM-style change-point locator is included to find *when*
//! a series actually shifted, so the lag between disclosure and
//! reaction (the paper's 18-month server-vs-client RC4 gap) can be
//! measured rather than eyeballed.

use tlscope_chron::{Date, Month};

use crate::attacks::AttackEvent;
use crate::series::{Figure, Series};

/// Slope comparison around an event for one series.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactEstimate {
    /// Attack name.
    pub attack: &'static str,
    /// Series label.
    pub series: String,
    /// Mean monthly slope (pp/month) over the window before the event.
    pub slope_before: f64,
    /// Mean monthly slope over the window after.
    pub slope_after: f64,
}

impl ImpactEstimate {
    /// Post-minus-pre slope: negative = decline accelerated after the
    /// event.
    pub fn slope_change(&self) -> f64 {
        self.slope_after - self.slope_before
    }
}

fn mean_slope(series: &Series, months: &[Month], from: Month, to: Month) -> Option<f64> {
    let vals: Vec<(i32, f64)> = months
        .iter()
        .zip(&series.values)
        .filter(|(m, v)| **m >= from && **m <= to && v.is_finite())
        .map(|(m, v)| (m.index(), *v))
        .collect();
    if vals.len() < 3 {
        return None;
    }
    // Least-squares slope.
    let n = vals.len() as f64;
    let mean_x = vals.iter().map(|(x, _)| *x as f64).sum::<f64>() / n;
    let mean_y = vals.iter().map(|(_, y)| *y).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in &vals {
        let dx = *x as f64 - mean_x;
        num += dx * (*y - mean_y);
        den += dx * dx;
    }
    (den > 0.0).then(|| num / den)
}

/// Estimate an attack's impact on one series of a figure, using
/// `window_months` on each side of the disclosure.
pub fn estimate_impact(
    fig: &Figure,
    series_label: &str,
    attack: &AttackEvent,
    window_months: i32,
) -> Option<ImpactEstimate> {
    let series = fig.series(series_label)?;
    let event_month = attack.date.month();
    let before = mean_slope(
        series,
        &fig.months,
        event_month.add_months(-window_months),
        event_month,
    )?;
    let after = mean_slope(
        series,
        &fig.months,
        event_month,
        event_month.add_months(window_months),
    )?;
    Some(ImpactEstimate {
        attack: attack.name,
        series: series_label.to_string(),
        slope_before: before,
        slope_after: after,
    })
}

/// Locate the month where a series' level shifts the most: the split
/// point maximising |mean(left) - mean(right)| (a two-sample CUSUM).
pub fn change_point(fig: &Figure, series_label: &str) -> Option<(Month, f64)> {
    let series = fig.series(series_label)?;
    let vals: Vec<(Month, f64)> = fig
        .months
        .iter()
        .zip(&series.values)
        .filter(|(_, v)| v.is_finite())
        .map(|(m, v)| (*m, *v))
        .collect();
    if vals.len() < 6 {
        return None;
    }
    let mut best: Option<(Month, f64)> = None;
    for split in 3..vals.len() - 3 {
        let left: f64 = vals[..split].iter().map(|(_, v)| v).sum::<f64>() / split as f64;
        let right: f64 =
            vals[split..].iter().map(|(_, v)| v).sum::<f64>() / (vals.len() - split) as f64;
        let shift = (right - left).abs();
        if best.map(|(_, s)| shift > s).unwrap_or(true) {
            best = Some((vals[split].0, shift));
        }
    }
    best
}

/// Months between an event and the located change point (positive =
/// the shift came after the disclosure).
pub fn reaction_lag_months(fig: &Figure, series_label: &str, event: Date) -> Option<i32> {
    let (cp, _) = change_point(fig, series_label)?;
    Some(cp.months_since(event.month()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::attack;

    fn step_figure(step_at: usize, n: usize) -> Figure {
        let months: Vec<Month> = Month::ym(2013, 1)
            .iter_through(Month::ym(2013, 1).add_months(n as i32 - 1))
            .collect();
        let values: Vec<f64> = (0..n)
            .map(|i| if i < step_at { 60.0 } else { 10.0 })
            .collect();
        let mut fig = Figure::new("t", "t", months);
        fig.push_series(Series::new("x", values));
        fig
    }

    #[test]
    fn change_point_finds_step() {
        let fig = step_figure(24, 48);
        let (cp, shift) = change_point(&fig, "x").unwrap();
        // Within a few months of the step.
        let expected = Month::ym(2013, 1).add_months(24);
        assert!(cp.months_since(expected).abs() <= 3, "{cp} vs {expected}");
        assert!(shift > 30.0);
    }

    #[test]
    fn impact_detects_slope_break() {
        // Flat before 2014-04, declining after.
        let months: Vec<Month> = Month::ym(2013, 4)
            .iter_through(Month::ym(2015, 4))
            .collect();
        let values: Vec<f64> = months
            .iter()
            .map(|m| {
                let pivot = Month::ym(2014, 4);
                if *m <= pivot {
                    50.0
                } else {
                    50.0 - 2.0 * m.months_since(pivot) as f64
                }
            })
            .collect();
        let mut fig = Figure::new("t", "t", months);
        fig.push_series(Series::new("x", values));
        let hb = attack("Heartbleed").unwrap();
        let est = estimate_impact(&fig, "x", hb, 12).unwrap();
        assert!(est.slope_before.abs() < 0.3, "{est:?}");
        assert!(est.slope_after < -1.0, "{est:?}");
        assert!(est.slope_change() < -1.0);
    }

    #[test]
    fn reaction_lag() {
        let fig = step_figure(30, 48); // step at 2015-07
        let lag = reaction_lag_months(&fig, "x", Date::ymd(2015, 3, 1)).unwrap();
        assert!((0..=8).contains(&lag), "lag {lag}");
    }

    #[test]
    fn missing_series_is_none() {
        let fig = step_figure(10, 20);
        assert!(change_point(&fig, "nope").is_none());
        assert!(estimate_impact(&fig, "nope", attack("POODLE").unwrap(), 12).is_none());
    }
}
