//! The attack timeline of §2.2, plus the auxiliary event dates the
//! figures annotate (Snowden, RFC 7465, browser RC4 drops).

use tlscope_chron::Date;

/// One disclosed attack or ecosystem event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackEvent {
    /// Short identifier used in annotations.
    pub name: &'static str,
    /// Disclosure date (as the paper lists it).
    pub date: Date,
    /// One-line description.
    pub description: &'static str,
}

/// The §2.2 disclosure timeline, ordered by date.
pub static ATTACKS: &[AttackEvent] = &[
    AttackEvent {
        name: "BEAST",
        date: Date::ymd(2011, 9, 6),
        description: "CBC predictable-IV attack on TLS <= 1.0",
    },
    AttackEvent {
        name: "Lucky13",
        date: Date::ymd(2012, 12, 6),
        description: "CBC padding timing attack",
    },
    AttackEvent {
        name: "RC4",
        date: Date::ymd(2013, 3, 12),
        description: "RC4 single-byte bias attacks",
    },
    AttackEvent {
        name: "Snowden",
        date: Date::ymd(2013, 6, 5),
        description: "surveillance disclosures (forward-secrecy driver)",
    },
    AttackEvent {
        name: "Heartbleed",
        date: Date::ymd(2014, 4, 7),
        description: "OpenSSL heartbeat buffer over-read",
    },
    AttackEvent {
        name: "POODLE",
        date: Date::ymd(2014, 10, 14),
        description: "SSL 3 CBC padding-oracle via fallback",
    },
    AttackEvent {
        name: "FREAK",
        date: Date::ymd(2015, 3, 3),
        description: "RSA_EXPORT downgrade",
    },
    AttackEvent {
        name: "RC4 passwords",
        date: Date::ymd(2015, 3, 26),
        description: "password-recovery attacks against RC4",
    },
    AttackEvent {
        name: "Logjam",
        date: Date::ymd(2015, 5, 20),
        description: "DHE_EXPORT downgrade",
    },
    AttackEvent {
        name: "RC4 no more",
        date: Date::ymd(2015, 7, 15),
        description: "RC4 NOMORE biases / RFC 7465 era",
    },
    AttackEvent {
        name: "Sweet32",
        date: Date::ymd(2016, 8, 31),
        description: "64-bit block birthday attack (3DES)",
    },
];

/// Browser RC4-removal dates (the black dots of Figure 6, Table 4).
pub static RC4_DROPS: &[AttackEvent] = &[
    AttackEvent {
        name: "Chrome drops RC4",
        date: Date::ymd(2015, 5, 19),
        description: "Chrome 43",
    },
    AttackEvent {
        name: "IE/Edge drops RC4",
        date: Date::ymd(2015, 5, 20),
        description: "IE/Edge 13",
    },
    AttackEvent {
        name: "Opera drops RC4",
        date: Date::ymd(2015, 6, 9),
        description: "Opera 30",
    },
    AttackEvent {
        name: "Firefox drops RC4",
        date: Date::ymd(2016, 1, 26),
        description: "Firefox 44",
    },
    AttackEvent {
        name: "Safari drops RC4",
        date: Date::ymd(2016, 9, 20),
        description: "Safari 10.1",
    },
];

/// Look up an attack by name.
pub fn attack(name: &str) -> Option<&'static AttackEvent> {
    ATTACKS.iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_ordered() {
        for w in ATTACKS.windows(2) {
            assert!(w[0].date <= w[1].date, "{} after {}", w[0].name, w[1].name);
        }
        for w in RC4_DROPS.windows(2) {
            assert!(w[0].date <= w[1].date);
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(attack("Heartbleed").unwrap().date, Date::ymd(2014, 4, 7));
        assert_eq!(attack("POODLE").unwrap().date, Date::ymd(2014, 10, 14));
        assert!(attack("QUANTUM").is_none());
    }

    #[test]
    fn beast_predates_study_window() {
        assert!(attack("BEAST").unwrap().date < Date::ymd(2012, 2, 1));
    }
}
