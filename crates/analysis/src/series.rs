//! Time-series containers and rendering for figures.
//!
//! A [`Figure`] is a set of monthly percentage series plus optional
//! event annotations (the vertical attack lines of the paper's plots).
//! Rendering targets are CSV (for external plotting) and a compact
//! ASCII chart (for terminal inspection and the repro harness output).

use tlscope_chron::{Date, Month};

/// One named series over a shared month axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per month of the figure's axis (NaN = no data).
    pub values: Vec<f64>,
}

impl Series {
    /// Build from a label and values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }

    /// Value at an axis index.
    pub fn at(&self, idx: usize) -> f64 {
        self.values.get(idx).copied().unwrap_or(f64::NAN)
    }

    /// Maximum finite value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// An event annotation (attack disclosure, browser release, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Event date.
    pub date: Date,
    /// Short label.
    pub label: String,
}

/// A complete figure: axis, series, annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier ("fig1").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Month axis.
    pub months: Vec<Month>,
    /// The series.
    pub series: Vec<Series>,
    /// Vertical-line annotations.
    pub annotations: Vec<Annotation>,
}

impl Figure {
    /// Build an empty figure over a month axis.
    pub fn new(id: impl Into<String>, title: impl Into<String>, months: Vec<Month>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            months,
            series: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Add a series; panics if the length does not match the axis.
    pub fn push_series(&mut self, s: Series) {
        assert_eq!(
            s.values.len(),
            self.months.len(),
            "series '{}' length mismatch",
            s.label
        );
        self.series.push(s);
    }

    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Value of a labelled series at a month.
    pub fn value_at(&self, label: &str, month: Month) -> Option<f64> {
        let idx = self.months.iter().position(|m| *m == month)?;
        let v = self.series(label)?.at(idx);
        v.is_finite().then_some(v)
    }

    /// Emit CSV: `month,series1,series2,...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("month");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for (i, m) in self.months.iter().enumerate() {
            out.push_str(&m.to_string());
            for s in &self.series {
                let v = s.at(i);
                if v.is_finite() {
                    out.push_str(&format!(",{v:.3}"));
                } else {
                    out.push(',');
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render a compact ASCII chart (one row per series, sampled).
    pub fn to_ascii(&self, width: usize) -> String {
        const GLYPHS: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.id, self.title));
        if self.months.is_empty() {
            return out;
        }
        let max = self.series.iter().map(|s| s.max()).fold(1.0f64, f64::max);
        let label_w = self.series.iter().map(|s| s.label.len()).max().unwrap_or(0);
        for s in &self.series {
            out.push_str(&format!("{:label_w$} |", s.label));
            for col in 0..width {
                let idx = col * self.months.len() / width.max(1);
                let v = s.at(idx.min(self.months.len() - 1));
                let g = if v.is_finite() {
                    let t = (v / max).clamp(0.0, 1.0);
                    GLYPHS[((t * (GLYPHS.len() - 1) as f64).round()) as usize]
                } else {
                    b' '
                };
                out.push(g as char);
            }
            out.push_str(&format!("| max {:.1}\n", s.max()));
        }
        out.push_str(&format!(
            "{:label_w$}  {} .. {}   (peak scale {:.1})\n",
            "",
            self.months[0],
            self.months[self.months.len() - 1],
            max
        ));
        for a in &self.annotations {
            out.push_str(&format!("{:label_w$}  | {}: {}\n", "", a.date, a.label));
        }
        out
    }
}

/// A generic table (for Tables 1–6 and the section summaries).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Identifier ("table2").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<&str>) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics on column-count mismatch.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "column mismatch");
        self.rows.push(row);
    }

    /// Render aligned ASCII.
    pub fn to_ascii(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("{} — {}\n", self.id, self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            line.push_str(&format!("{:w$}  ", h, w = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                line.push_str(&format!("{:w$}  ", cell, w = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Emit CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let months: Vec<Month> = Month::ym(2015, 1)
            .iter_through(Month::ym(2015, 4))
            .collect();
        let mut f = Figure::new("figX", "test", months);
        f.push_series(Series::new("a", vec![10.0, 20.0, 30.0, 40.0]));
        f.push_series(Series::new("b", vec![5.0, f64::NAN, 15.0, 20.0]));
        f
    }

    #[test]
    fn value_lookup() {
        let f = fig();
        assert_eq!(f.value_at("a", Month::ym(2015, 3)), Some(30.0));
        assert_eq!(f.value_at("b", Month::ym(2015, 2)), None); // NaN
        assert_eq!(f.value_at("c", Month::ym(2015, 1)), None);
        assert_eq!(f.value_at("a", Month::ym(2016, 1)), None);
    }

    #[test]
    fn csv_layout() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "month,a,b");
        assert_eq!(lines[1], "2015-01,10.000,5.000");
        assert_eq!(lines[2], "2015-02,20.000,"); // NaN → empty cell
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_enforced() {
        let mut f = fig();
        f.push_series(Series::new("short", vec![1.0]));
    }

    #[test]
    fn ascii_chart_renders() {
        let text = fig().to_ascii(20);
        assert!(text.contains("figX"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("t1", "versions", vec!["Version", "Date"]);
        t.push_row(vec!["SSL 2".into(), "Feb. 1995".into()]);
        t.push_row(vec!["TLS 1.3".into(), "Aug. 2018".into()]);
        let ascii = t.to_ascii();
        assert!(ascii.contains("SSL 2"));
        let csv = t.to_csv();
        assert!(csv.starts_with("Version,Date\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn series_max_skips_nan() {
        let s = Series::new("x", vec![f64::NAN, 3.0, 2.0]);
        assert_eq!(s.max(), 3.0);
    }
}
