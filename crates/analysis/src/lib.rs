//! # tlscope-analysis
//!
//! The longitudinal analysis layer of the tlscope reproduction of
//! *Coming of Age* (IMC 2018): study orchestration over the passive and
//! active pipelines, generators for every figure (1–10) and table (1–6)
//! of the paper, the in-text section statistics (§4.1, §5.1–§5.6,
//! §6.1–§6.4, §7.3), and mechanical attack-impact estimation (§7.4):
//! slope breaks and change points around disclosure dates.
//!
//! ```no_run
//! use tlscope_analysis::{Study, StudyConfig, figures};
//!
//! let study = Study::new(StudyConfig::quick());
//! let agg = study.run_passive();
//! let fig1 = figures::fig1(&agg);
//! println!("{}", fig1.to_ascii(72));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod figures;
pub mod impact;
pub mod sections;
pub mod series;
pub mod study;
pub mod tables;
#[cfg(test)]
mod tests_support;

pub use attacks::{attack, AttackEvent, ATTACKS, RC4_DROPS};
pub use impact::{change_point, estimate_impact, reaction_lag_months, ImpactEstimate};
pub use series::{Annotation, Figure, Series, Table};
pub use study::{Study, StudyConfig};
