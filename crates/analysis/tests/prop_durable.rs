//! Study-level durability property: for either aperture — the passive
//! monthly pipeline or the active scan campaign — a checkpointed run
//! that is interrupted at an arbitrary point and whose store is then
//! damaged (files truncated, bit-flipped, or shadowed by a leftover
//! `.tmp`) resumes to results bit-identical to a clean run, with the
//! loaded / quarantined / written counters accounting for every file.
//!
//! Interruption is simulated by deleting a suffix of a fully
//! checkpointed store: the surviving prefix is byte-identical to what
//! a run killed at that point would have left behind.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use tlscope_analysis::{Study, StudyConfig};
use tlscope_chron::Month;
use tlscope_notary::PipelineMetrics;
use tlscope_scanner::{ScanFaults, ScanMetrics};
use tlscope_traffic::FaultInjector;

#[derive(Debug, Clone, Copy)]
enum Damage {
    TruncateHalf,
    TruncateToZero,
    FlipByte(usize, u8),
}

fn damage() -> impl Strategy<Value = Damage> {
    prop_oneof![
        Just(Damage::TruncateHalf),
        Just(Damage::TruncateToZero),
        ((0usize..4096), (1u8..255)).prop_map(|(i, m)| Damage::FlipByte(i, m)),
    ]
}

fn inflict(path: &Path, d: Damage) {
    let mut bytes = std::fs::read(path).unwrap();
    match d {
        Damage::TruncateHalf => bytes.truncate(bytes.len() / 2),
        Damage::TruncateToZero => bytes.clear(),
        Damage::FlipByte(at, mask) => {
            let i = at % bytes.len();
            bytes[i] ^= mask;
        }
    }
    std::fs::write(path, bytes).unwrap();
}

fn tap_faults() -> impl Strategy<Value = FaultInjector> {
    (0usize..3).prop_map(|i| match i {
        0 => FaultInjector::none(),
        1 => FaultInjector::stress(),
        _ => FaultInjector {
            truncate_prob: 0.3,
            duplicate_prob: 0.2,
            ..FaultInjector::none()
        },
    })
}

fn scan_faults() -> impl Strategy<Value = ScanFaults> {
    (0usize..3).prop_map(|i| match i {
        0 => ScanFaults::none(),
        1 => ScanFaults::scan_defaults(),
        _ => ScanFaults::stress(),
    })
}

fn unique_dir(tag: &str, seed: u64) -> PathBuf {
    let pid = std::process::id();
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!("tlscope-prop-durable-{tag}-{seed}-{pid}-{t}"))
}

/// Checkpoint files in the store, sorted (months and dates both sort
/// lexicographically in this format).
fn store_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| rd.map(|e| e.unwrap().path()).collect())
        .unwrap_or_default();
    files.sort();
    files
}

proptest! {
    // Each case runs two full studies per aperture; keep it modest.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn damaged_interrupted_studies_resume_bit_identically(
        seed in 0u64..1_000_000,
        workers in 1usize..=8,
        deleted in 0usize..=2,
        damaged in 0usize..=2,
        dmg in damage(),
        tap in tap_faults(),
        scan in scan_faults(),
    ) {
        let mut cfg = StudyConfig::quick();
        cfg.seed = seed;
        cfg.start = Month::ym(2016, 1);
        cfg.end = Month::ym(2016, 4);
        cfg.connections_per_month = 120;
        cfg.scan_hosts = 60;
        cfg.workers = workers;
        cfg.faults = tap;
        cfg.scan_faults = scan;

        // --- Passive aperture ---
        let clean = Study::new(cfg.clone()).run_passive();
        let dir = unique_dir("passive", seed);
        let mut ckpt_cfg = cfg.clone();
        ckpt_cfg.checkpoint_dir = Some(dir.clone());
        let _ = Study::new(ckpt_cfg.clone()).run_passive();
        let files = store_files(&dir);
        let total = files.len();
        // Interrupt: drop the last `del` checkpoints; damage the first
        // `dam` of what survives.
        let del = deleted.min(total);
        for path in files.iter().rev().take(del) {
            std::fs::remove_file(path).unwrap();
        }
        let dam = damaged.min(total - del);
        for path in files.iter().take(dam) {
            inflict(path, dmg);
        }
        std::fs::write(dir.join("2016-01.ckpt.tmp"), "torn write").unwrap();
        let metrics = PipelineMetrics::new();
        let resumed = Study::new(ckpt_cfg).try_run_passive_metered(&metrics).unwrap();
        prop_assert_eq!(&resumed, &clean);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds());
        prop_assert_eq!(s.checkpoints_loaded, (total - del - dam) as u64);
        prop_assert_eq!(s.checkpoints_quarantined, dam as u64);
        prop_assert_eq!(s.checkpoints_written, (del + dam) as u64);
        std::fs::remove_dir_all(&dir).ok();

        // --- Active aperture ---
        let clean_scans = Study::new(cfg.clone()).run_active();
        let scan_dir = unique_dir("scan", seed);
        let mut scan_cfg = cfg.clone();
        scan_cfg.scan_checkpoint_dir = Some(scan_dir.clone());
        let _ = Study::new(scan_cfg.clone()).run_active();
        let files = store_files(&scan_dir);
        let total = files.len();
        prop_assert_eq!(total, clean_scans.len());
        let del = deleted.min(total);
        for path in files.iter().rev().take(del) {
            std::fs::remove_file(path).unwrap();
        }
        let dam = damaged.min(total - del);
        for path in files.iter().take(dam) {
            inflict(path, dmg);
        }
        std::fs::write(scan_dir.join("2015-08-22.ckpt.tmp"), "torn write").unwrap();
        let scan_metrics = ScanMetrics::new();
        let resumed_scans = Study::new(scan_cfg)
            .try_run_active_metered(&scan_metrics)
            .unwrap();
        prop_assert_eq!(&resumed_scans, &clean_scans);
        let s = scan_metrics.snapshot();
        prop_assert!(s.accounting_holds(), "{:?}", s);
        prop_assert_eq!(s.checkpoints_loaded, (total - del - dam) as u64);
        prop_assert_eq!(s.checkpoints_quarantined, dam as u64);
        prop_assert_eq!(s.checkpoints_written, (del + dam) as u64);
        std::fs::remove_dir_all(&scan_dir).ok();
    }
}
