//! Property test for the checkpoint/resume tentpole: for any tap
//! fault mix — including the extended faults (mid-flow gaps, flow
//! duplication, outage windows) — any worker count 1–8 and any batch
//! size 1–300, a study killed mid-window and resumed from its
//! checkpoint directory produces an aggregate bit-identical to the
//! uninterrupted serial run, and the flow-accounting invariant
//! `dispatched = ingested + quarantined` holds throughout. The same
//! traffic through the batched worker pipeline must agree too.

use std::path::PathBuf;

use proptest::prelude::*;
use tlscope_analysis::{Study, StudyConfig};
use tlscope_chron::Month;
use tlscope_notary::{ingest_batched, ingest_serial, PipelineMetrics, TappedFlow};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

fn fault_mix() -> impl Strategy<Value = FaultInjector> {
    (0usize..4).prop_map(|i| match i {
        0 => FaultInjector::none(),
        // The extended faults the ISSUE names: outages + duplication.
        1 => FaultInjector {
            gap_prob: 0.4,
            duplicate_prob: 0.3,
            outage_prob: 0.4,
            ..FaultInjector::none()
        },
        2 => FaultInjector::stress(),
        _ => FaultInjector {
            truncate_prob: 0.5,
            corrupt_prob: 0.5,
            duplicate_prob: 0.2,
            ..FaultInjector::none()
        },
    })
}

fn unique_dir(seed: u64, workers: usize, batch: usize) -> PathBuf {
    let pid = std::process::id();
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!(
        "tlscope-prop-resume-{seed}-{workers}-{batch}-{pid}-{t}"
    ))
}

proptest! {
    // Each case runs three short studies; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn resumed_checkpoint_equals_uninterrupted_serial(
        seed in 0u64..1_000_000,
        workers in 1usize..=8,
        batch in 1usize..300,
        n in 40u32..120,
        faults in fault_mix(),
    ) {
        let mut cfg = StudyConfig::quick();
        cfg.seed = seed;
        cfg.connections_per_month = n;
        cfg.start = Month::ym(2016, 1);
        cfg.end = Month::ym(2016, 3);
        cfg.workers = 1;
        cfg.faults = faults;
        let serial = Study::new(cfg.clone()).run_passive();

        // A run killed after two completed months...
        let dir = unique_dir(seed, workers, batch);
        let mut killed = cfg.clone();
        killed.end = Month::ym(2016, 2);
        killed.workers = workers;
        killed.checkpoint_dir = Some(dir.clone());
        let _ = Study::new(killed).run_passive();

        // ...resumed sharded over the full window.
        let mut resumed_cfg = cfg.clone();
        resumed_cfg.workers = workers;
        resumed_cfg.checkpoint_dir = Some(dir.clone());
        let metrics = PipelineMetrics::new();
        let resumed = Study::new(resumed_cfg).try_run_passive_metered(&metrics).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&resumed, &serial);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds());
        prop_assert_eq!(s.shards_lost, 0);

        // The batched worker pipeline agrees on the same traffic for
        // this worker/batch combination.
        let g = Generator::new(TrafficConfig {
            seed,
            connections_per_month: n,
            faults,
        });
        let flows: Vec<TappedFlow> = g
            .month(Month::ym(2016, 2))
            .into_iter()
            .map(TappedFlow::from)
            .collect();
        let batch_metrics = PipelineMetrics::new();
        let batched = ingest_batched(flows.clone(), workers, batch, &batch_metrics);
        prop_assert_eq!(&batched, &ingest_serial(flows));
        prop_assert!(batch_metrics.snapshot().accounting_holds());
    }
}
