//! Wire-layer benchmarks: the raw parsing throughput a passive monitor
//! lives or dies by.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tlscope::wire::record::Record;
use tlscope::wire::{
    CipherSuite, ClientHello, Extension, NamedGroup, ProtocolVersion, ServerHello,
};

fn sample_hello() -> ClientHello {
    ClientHello {
        legacy_version: ProtocolVersion::Tls12,
        random: [7; 32],
        session_id: vec![0; 32],
        cipher_suites: (0..24u16)
            .map(|i| {
                CipherSuite(
                    [
                        0xc02b, 0xc02f, 0xc013, 0xc014, 0x009c, 0x002f, 0x0035, 0x000a,
                    ][i as usize % 8],
                )
            })
            .collect(),
        compression_methods: vec![0],
        extensions: Some(vec![
            Extension::server_name("benchmark.example.org"),
            Extension::renegotiation_info(),
            Extension::supported_groups(&[
                NamedGroup::X25519,
                NamedGroup::SECP256R1,
                NamedGroup::SECP384R1,
            ]),
            Extension::ec_point_formats(&[0]),
            Extension::signature_algorithms(&[0x0403, 0x0401, 0x0501, 0x0201]),
            Extension::alpn(&["h2", "http/1.1"]),
        ]),
    }
}

fn bench_client_hello(c: &mut Criterion) {
    let hello = sample_hello();
    let bytes = hello.to_handshake_bytes();
    let mut g = c.benchmark_group("wire/client_hello");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serialize", |b| b.iter(|| hello.to_handshake_bytes()));
    g.bench_function("parse", |b| {
        b.iter(|| ClientHello::parse_handshake(&bytes).unwrap())
    });
    g.finish();
}

fn bench_server_hello(c: &mut Criterion) {
    let sh = ServerHello {
        legacy_version: ProtocolVersion::Tls12,
        random: [9; 32],
        session_id: vec![0; 32],
        cipher_suite: CipherSuite(0xc02f),
        compression_method: 0,
        extensions: Some(vec![Extension::renegotiation_info()]),
    };
    let bytes = sh.to_handshake_bytes();
    c.bench_function("wire/server_hello/parse", |b| {
        b.iter(|| ServerHello::parse_handshake(&bytes).unwrap())
    });
}

fn bench_record_layer(c: &mut Criterion) {
    let hello = sample_hello();
    let handshake = hello.to_handshake_bytes();
    let flow: Vec<u8> = Record::wrap_handshake(ProtocolVersion::Tls10, &handshake)
        .iter()
        .flat_map(|r| r.to_bytes())
        .collect();
    let mut g = c.benchmark_group("wire/record");
    g.throughput(Throughput::Bytes(flow.len() as u64));
    g.bench_function("read_coalesce_parse", |b| {
        b.iter(|| {
            let records = Record::read_all(&flow).unwrap();
            let hs = Record::coalesce_handshake(&records).unwrap();
            ClientHello::parse_handshake(&hs).unwrap()
        })
    });
    g.finish();
}

fn bench_classification(c: &mut Criterion) {
    let suites: Vec<CipherSuite> = tlscope::wire::suites_table::SUITES
        .iter()
        .map(|i| CipherSuite(i.id))
        .collect();
    c.bench_function("wire/classify_full_registry", |b| {
        b.iter_batched(
            || suites.clone(),
            |suites| {
                let mut acc = 0usize;
                for s in suites {
                    acc += usize::from(s.is_rc4())
                        + usize::from(s.is_cbc())
                        + usize::from(s.is_aead())
                        + usize::from(s.is_export())
                        + usize::from(s.is_anon())
                        + usize::from(s.is_forward_secret());
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_client_hello,
    bench_server_hello,
    bench_record_layer,
    bench_classification
);
criterion_main!(benches);
