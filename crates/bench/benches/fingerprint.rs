//! Fingerprinting benchmarks, including the GREASE-stripping ablation
//! from DESIGN.md: what happens to the fingerprint space if you skip
//! stripping (answer: Chrome alone explodes it 16×+ per draw site).

use criterion::{criterion_group, criterion_main, Criterion};
use tlscope::clients::{browsers, HelloEntropy};
use tlscope::fingerprint::{ja3_hash, md5, Fingerprint};

fn bench_extraction(c: &mut Criterion) {
    let chrome = browsers::chrome();
    let era = chrome.eras.last().unwrap();
    let hello = era
        .tls
        .build_hello(Some("example.org"), &HelloEntropy::from_seed(1));
    c.bench_function("fingerprint/extract_4feature", |b| {
        b.iter(|| Fingerprint::from_client_hello(&hello))
    });
    c.bench_function("fingerprint/ja3_hash", |b| b.iter(|| ja3_hash(&hello)));
}

fn bench_md5(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    let mut g = c.benchmark_group("fingerprint/md5");
    g.throughput(criterion::Throughput::Bytes(data.len() as u64));
    g.bench_function("4KiB", |b| b.iter(|| md5::md5(&data)));
    g.finish();
}

fn bench_db_lookup(c: &mut Criterion) {
    let (db, _) = tlscope::clients::catalog::build_database();
    let fps: Vec<Fingerprint> = tlscope::clients::catalog::all_families()
        .iter()
        .flat_map(|f| f.eras.iter().map(|e| e.tls.fingerprint()))
        .collect();
    c.bench_function("fingerprint/db_lookup_all", |b| {
        b.iter(|| fps.iter().filter(|fp| db.lookup(fp).is_some()).count())
    });
}

/// Ablation: fingerprint-space size over 256 GREASEd Chrome hellos,
/// with and without GREASE stripping.
fn bench_grease_ablation(c: &mut Criterion) {
    let chrome = browsers::chrome();
    let era = chrome
        .eras
        .iter()
        .find(|e| e.tls.grease)
        .expect("chrome greases");
    let hellos: Vec<_> = (0..256u64)
        .map(|i| era.tls.build_hello(None, &HelloEntropy::from_seed(i)))
        .collect();
    let mut g = c.benchmark_group("fingerprint/grease_ablation");
    g.bench_function("with_stripping", |b| {
        b.iter(|| {
            let set: std::collections::HashSet<u64> = hellos
                .iter()
                .map(|h| Fingerprint::from_client_hello(h).id64())
                .collect();
            assert_eq!(set.len(), 1, "stripping must collapse GREASE draws");
            set.len()
        })
    });
    g.bench_function("without_stripping", |b| {
        b.iter(|| {
            // A naive fingerprint that keeps GREASE values.
            let set: std::collections::HashSet<Vec<u16>> = hellos
                .iter()
                .map(|h| h.cipher_suites.iter().map(|c| c.0).collect())
                .collect();
            assert!(set.len() > 4, "GREASE must explode the naive space");
            set.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_md5,
    bench_db_lookup,
    bench_grease_ablation
);
criterion_main!(benches);
