//! pipeline/alloc — end-to-end generation→ingestion throughput and
//! allocation bench.
//!
//! Unlike the criterion benches this is a plain `main` so it can emit a
//! machine-readable trajectory file, `BENCH_pipeline.json`, at the
//! workspace root. Run it with the counting allocator enabled:
//!
//! ```text
//! cargo bench -p tlscope-bench --bench alloc --features alloc-counter -- --fast
//! ```
//!
//! Without `--features alloc-counter` the bench still reports
//! throughput but allocation counts read as zero, so the budget check
//! is skipped. `--fast` shrinks the workload for CI smoke runs. The
//! bench exits non-zero when allocations per connection exceed the
//! committed budget, which is how the CI bench-smoke job fails on an
//! allocation regression.
//!
//! The per-stage breakdown reports where the remaining allocations
//! live: `gen` pulls borrowed flows from the generator's scratch,
//! `channel` is the producer side of the pool-recycled batch channel
//! over a warm pool, and `ingest` extracts-and-aggregates borrowed
//! bytes through the thread-local record slot. The `pipeline` row is
//! the fused borrowed path the study runner uses.
//!
//! Two cache rows report how well the wire roundtrip is amortised on
//! the clean profile: `template_cache` (generation-side hello template
//! reuse) and `parse_cache` (ingestion-side masked-hello memoisation).
//! Both hit rates are gated at > 0.9 — the traffic model's client
//! population is a bounded set of stacks, so a cold cache on a clean
//! run means the keying broke, and the bench exits non-zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tlscope::chron::Month;
use tlscope::notary::{
    ingest_borrowed, ingest_flow, ingest_pooled_scope, parse_cache_stats, FlowPool,
    NotaryAggregate, PipelineConfig, PipelineMetrics, TappedFlow, DEFAULT_BATCH,
};
use tlscope::obs::Progress;
use tlscope::traffic::{FaultInjector, Generator, TrafficConfig};

/// Pre-PR measurement (commit a5f358f, this bench at 20k connections,
/// month 2015-06, fault profile `none`), recorded before the zero-copy
/// extraction and fingerprint-interning work landed so the emitted
/// JSON always carries the comparison point.
const PRE_PR_GEN_ALLOCS_PER_CONN: f64 = 48.100;
const PRE_PR_INGEST_ALLOCS_PER_CONN: f64 = 53.988;
const PRE_PR_PIPELINE_ALLOCS_PER_CONN: f64 = 102.089;
const PRE_PR_PIPELINE_CONNS_PER_SEC: f64 = 97_929.0;

/// Previous-PR fallback (owned `TappedFlow` roundtrip, 16.0 budget).
/// The emitted `baseline_prev_pr` is normally parsed at runtime from
/// the committed `BENCH_pipeline.json`'s `pipeline` row — whatever the
/// last PR recorded is the comparison point — and these constants only
/// back it up when that file is missing or unreadable.
const PREV_PR_PIPELINE_ALLOCS_PER_CONN: f64 = 13.119;
const PREV_PR_PIPELINE_CONNS_PER_SEC: f64 = 146_219.0;

/// Minimum hit rate for both wire-roundtrip caches on the clean
/// profile; below this the amortisation story is broken.
const CACHE_HIT_RATE_MIN: f64 = 0.9;

/// Minimum heartbeat-on/heartbeat-off throughput ratio for the fused
/// pipeline. The heartbeat is observational — a same-run ratio far
/// below 1.0 means the ticker started perturbing the hot loop. Kept
/// lenient so scheduler noise on shared CI runners cannot flake it;
/// the measured ratio itself is recorded in the trajectory file.
const HEARTBEAT_RATIO_MIN: f64 = 0.90;

use tlscope_bench::PIPELINE_ALLOC_BUDGET_PER_CONN;

#[cfg(feature = "alloc-counter")]
use tlscope_bench::alloc_counter;

#[cfg(not(feature = "alloc-counter"))]
mod alloc_counter {
    /// Stub so the bench compiles without the counting allocator; all
    /// counts read as zero and the budget check is skipped.
    pub fn counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
        (f(), 0)
    }
}

fn generator(conns: u32) -> Generator {
    Generator::new(TrafficConfig {
        seed: 0x715C0,
        connections_per_month: conns,
        faults: FaultInjector::none(),
    })
}

fn flow_bytes(flow: &TappedFlow) -> u64 {
    flow.client.len() as u64 + flow.server.as_ref().map_or(0, |s| s.len() as u64)
}

/// Best-of-`reps` wall time for `f`, which must be repeatable.
fn best_secs(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// First numeric value following `key` in a JSON fragment. Enough of a
/// parser for this bench's own output format; anything surprising
/// yields `None` and the caller falls back to the compiled constants.
fn json_number(fragment: &str, key: &str) -> Option<f64> {
    let rest = fragment.split(key).nth(1)?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Previous-PR `(allocs_per_conn, conns_per_sec)` baseline, read from
/// the committed trajectory file's `pipeline` row so the comparison
/// point rolls forward automatically with each landed PR.
fn prev_pr_baseline(path: &str) -> (f64, f64) {
    let fallback = (
        PREV_PR_PIPELINE_ALLOCS_PER_CONN,
        PREV_PR_PIPELINE_CONNS_PER_SEC,
    );
    let Ok(text) = std::fs::read_to_string(path) else {
        return fallback;
    };
    // `"pipeline":` matches only the stage row — the longer
    // `pipeline_allocs_per_conn` / `pipeline_conns_per_sec` keys in the
    // baseline rows keep their own suffix before the colon.
    let Some(row) = text.split("\"pipeline\":").nth(1) else {
        return fallback;
    };
    match (
        json_number(row, "\"allocs_per_conn\":"),
        json_number(row, "\"conns_per_sec\":"),
    ) {
        (Some(apc), Some(cps)) => (apc, cps),
        _ => fallback,
    }
}

/// Hit rate, or 0.0 for an untouched cache (which fails the gate:
/// a clean-profile run that never consults a cache is itself a bug).
fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let conns: u32 = if fast { 3_000 } else { 20_000 };
    let reps: u32 = if fast { 2 } else { 3 };
    let month = Month::new(2015, 6).unwrap();
    let gen = generator(conns);

    // Warm up thread-local scratch and lazy runtime state outside the
    // counted regions; `warm` also serves as the pre-built owned flow
    // set for the ingest and channel stages.
    let warm: Vec<TappedFlow> = gen.stream_month(month).map(TappedFlow::from).collect();
    let mut agg = NotaryAggregate::new();
    for flow in warm.iter().take(64) {
        ingest_flow(&mut agg, flow);
    }
    drop(agg);
    let total_bytes: u64 = warm.iter().map(flow_bytes).sum();

    // --- Generation stage: borrowed pulls from stream scratch. ---
    let gen_stage = || {
        let mut stream = gen.stream_month(month);
        while let Some(flow) = stream.next_flow() {
            std::hint::black_box(&flow);
        }
    };
    let (_, gen_allocs) = alloc_counter::counted(gen_stage);
    let gen_secs = best_secs(reps, gen_stage);

    // --- Channel stage: producer side of the pool-recycled batch
    // channel, measured over a warm pool so the one-time circulation
    // population is excluded (counters are thread-local, so worker
    // extraction does not pollute the producer's count). ---
    let cfg = PipelineConfig::clamped(2, DEFAULT_BATCH);
    let pool = FlowPool::for_config(&cfg);
    let channel_stage = || {
        let metrics = PipelineMetrics::new();
        let (agg, ()) = ingest_pooled_scope(&pool, &cfg, &metrics, |feeder| {
            for f in &warm {
                feeder.push(f.date, f.port, &f.client, f.server.as_deref());
            }
        });
        std::hint::black_box(&agg);
    };
    channel_stage(); // cold run: fills the pool's circulation.
    let (_, channel_allocs) = alloc_counter::counted(channel_stage);
    let channel_secs = best_secs(reps, channel_stage);

    // --- Ingestion stage (extract + aggregate) over pre-built flows,
    // through the borrowed path. ---
    let ingest_stage = || {
        let mut agg = NotaryAggregate::new();
        for flow in &warm {
            ingest_borrowed(
                &mut agg,
                flow.date,
                flow.port,
                &flow.client,
                flow.server.as_deref(),
            );
        }
        std::hint::black_box(&agg);
    };
    let (_, ingest_allocs) = alloc_counter::counted(ingest_stage);
    let ingest_secs = best_secs(reps, ingest_stage);

    // --- Fused pipeline: generate -> tap -> extract -> aggregate,
    // zero-copy end to end (the study runner's inner loop). ---
    let fused = || {
        let mut agg = NotaryAggregate::new();
        let mut stream = gen.stream_month(month);
        while let Some(flow) = stream.next_flow() {
            ingest_borrowed(&mut agg, flow.date, flow.port, flow.client, flow.server);
        }
        std::hint::black_box(&agg);
    };
    let (_, pipeline_allocs) = alloc_counter::counted(fused);
    let pipeline_secs = best_secs(reps, fused);

    // --- Fused pipeline with the live heartbeat running: the same
    // inner loop, plus a 200ms Progress ticker on a scoped thread
    // sampling a shared counter the loop publishes every 1024 flows —
    // the cadence the study runner's per-batch metrics give it. The
    // heartbeat is observational by design; this row prices that claim
    // as a throughput ratio against the quiet fused row above.
    let heartbeat_secs = {
        let progress = Progress::with_interval(
            Duration::from_millis(200),
            "bench-fused",
            1,
            "runs",
            "flows",
        );
        let stop = AtomicBool::new(false);
        let published = AtomicU64::new(0);
        let mut best = f64::INFINITY;
        std::thread::scope(|scope| {
            scope.spawn(|| progress.run_ticker(&stop, || (0, published.load(Ordering::Relaxed))));
            for _ in 0..reps {
                let t0 = Instant::now();
                let mut agg = NotaryAggregate::new();
                let mut stream = gen.stream_month(month);
                let mut flows = 0u64;
                while let Some(flow) = stream.next_flow() {
                    ingest_borrowed(&mut agg, flow.date, flow.port, flow.client, flow.server);
                    flows += 1;
                    if flows % 1024 == 0 {
                        published.store(flows, Ordering::Relaxed);
                    }
                }
                std::hint::black_box(&agg);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            stop.store(true, Ordering::Release);
        });
        best
    };

    // --- Cache effectiveness on the clean profile: one dedicated
    // stream run for the generation-side template cache, and one fused
    // pass bracketed by thread-local counter snapshots for the
    // ingestion-side parse cache (the cache is warm from the timed
    // stages above, as it is in a long study run). ---
    let (tmpl_hits, tmpl_misses) = {
        let mut stream = gen.stream_month(month);
        while let Some(flow) = stream.next_flow() {
            std::hint::black_box(&flow);
        }
        stream.template_cache_stats()
    };
    let parse_before = parse_cache_stats();
    fused();
    let parse_after = parse_cache_stats();
    let parse_hits = parse_after.hits - parse_before.hits;
    let parse_misses = parse_after.misses - parse_before.misses;
    let tmpl_rate = hit_rate(tmpl_hits, tmpl_misses);
    let parse_rate = hit_rate(parse_hits, parse_misses);

    let n = conns as f64;
    let gen_apc = gen_allocs as f64 / n;
    let channel_apc = channel_allocs as f64 / n;
    let ingest_apc = ingest_allocs as f64 / n;
    let pipeline_apc = pipeline_allocs as f64 / n;
    let pipeline_cps = n / pipeline_secs;
    let heartbeat_cps = n / heartbeat_secs;
    let heartbeat_ratio = if pipeline_cps > 0.0 {
        heartbeat_cps / pipeline_cps
    } else {
        0.0
    };
    let counting = cfg!(feature = "alloc-counter");

    let alloc_reduction = if counting && pipeline_apc > 0.0 {
        PRE_PR_PIPELINE_ALLOCS_PER_CONN / pipeline_apc
    } else {
        0.0
    };
    let budget_pass = !counting || pipeline_apc <= PIPELINE_ALLOC_BUDGET_PER_CONN;
    let cache_pass = tmpl_rate > CACHE_HIT_RATE_MIN && parse_rate > CACHE_HIT_RATE_MIN;
    let heartbeat_pass = heartbeat_ratio >= HEARTBEAT_RATIO_MIN;

    // Read the previous PR's pipeline row before this run overwrites
    // the trajectory file.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let (prev_pipe_apc, prev_pipe_cps) = prev_pr_baseline(out);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline/alloc\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"connections\": {conns},\n",
            "  \"month\": \"2015-06\",\n",
            "  \"alloc_counter\": {counting},\n",
            "  \"gen\": {{ \"allocs_per_conn\": {gen_apc:.3}, \"conns_per_sec\": {gen_cps:.0} }},\n",
            "  \"channel\": {{ \"allocs_per_conn\": {chan_apc:.3}, \"conns_per_sec\": {chan_cps:.0} }},\n",
            "  \"ingest\": {{ \"allocs_per_conn\": {ing_apc:.3}, \"conns_per_sec\": {ing_cps:.0}, \"bytes_per_sec\": {ing_bps:.0} }},\n",
            "  \"pipeline\": {{ \"allocs_per_conn\": {pipe_apc:.3}, \"conns_per_sec\": {pipe_cps:.0}, \"bytes_per_sec\": {pipe_bps:.0} }},\n",
            "  \"heartbeat\": {{ \"conns_per_sec\": {beat_cps:.0}, \"ratio_vs_pipeline\": {beat_ratio:.4} }},\n",
            "  \"template_cache\": {{ \"hits\": {tmpl_hits}, \"misses\": {tmpl_misses}, \"hit_rate\": {tmpl_rate:.4} }},\n",
            "  \"parse_cache\": {{ \"hits\": {parse_hits}, \"misses\": {parse_misses}, \"hit_rate\": {parse_rate:.4} }},\n",
            "  \"baseline_pre_pr\": {{ \"gen_allocs_per_conn\": {pre_gen:.3}, \"ingest_allocs_per_conn\": {pre_ing:.3}, \"pipeline_allocs_per_conn\": {pre_pipe:.3}, \"pipeline_conns_per_sec\": {pre_cps:.0} }},\n",
            "  \"baseline_prev_pr\": {{ \"pipeline_allocs_per_conn\": {prev_pipe:.3}, \"pipeline_conns_per_sec\": {prev_cps:.0} }},\n",
            "  \"improvement\": {{ \"alloc_reduction_factor\": {red:.2}, \"throughput_factor\": {thr:.2} }},\n",
            "  \"budget\": {{ \"pipeline_allocs_per_conn_max\": {budget:.1}, \"cache_hit_rate_min\": {rate_min:.1}, \"heartbeat_ratio_min\": {beat_min:.2}, \"pass\": {pass} }}\n",
            "}}\n"
        ),
        mode = if fast { "fast" } else { "full" },
        conns = conns,
        counting = counting,
        gen_apc = gen_apc,
        gen_cps = n / gen_secs,
        chan_apc = channel_apc,
        chan_cps = n / channel_secs,
        ing_apc = ingest_apc,
        ing_cps = n / ingest_secs,
        ing_bps = total_bytes as f64 / ingest_secs,
        pipe_apc = pipeline_apc,
        pipe_cps = pipeline_cps,
        pipe_bps = total_bytes as f64 / pipeline_secs,
        beat_cps = heartbeat_cps,
        beat_ratio = heartbeat_ratio,
        tmpl_hits = tmpl_hits,
        tmpl_misses = tmpl_misses,
        tmpl_rate = tmpl_rate,
        parse_hits = parse_hits,
        parse_misses = parse_misses,
        parse_rate = parse_rate,
        pre_gen = PRE_PR_GEN_ALLOCS_PER_CONN,
        pre_ing = PRE_PR_INGEST_ALLOCS_PER_CONN,
        pre_pipe = PRE_PR_PIPELINE_ALLOCS_PER_CONN,
        pre_cps = PRE_PR_PIPELINE_CONNS_PER_SEC,
        prev_pipe = prev_pipe_apc,
        prev_cps = prev_pipe_cps,
        red = alloc_reduction,
        thr = if pipeline_cps > 0.0 && PRE_PR_PIPELINE_CONNS_PER_SEC > 0.0 {
            pipeline_cps / PRE_PR_PIPELINE_CONNS_PER_SEC
        } else {
            0.0
        },
        budget = PIPELINE_ALLOC_BUDGET_PER_CONN,
        rate_min = CACHE_HIT_RATE_MIN,
        beat_min = HEARTBEAT_RATIO_MIN,
        pass = budget_pass && cache_pass && heartbeat_pass,
    );

    print!("{json}");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    }

    if !budget_pass {
        eprintln!(
            "alloc budget exceeded: {pipeline_apc:.3} allocs/conn > {PIPELINE_ALLOC_BUDGET_PER_CONN:.1}"
        );
        std::process::exit(1);
    }
    if !cache_pass {
        eprintln!(
            "cache hit rate below {CACHE_HIT_RATE_MIN:.1} on the clean profile: \
             template {tmpl_rate:.4}, parse {parse_rate:.4}"
        );
        std::process::exit(1);
    }
    if !heartbeat_pass {
        eprintln!(
            "heartbeat tax too high: fused throughput with the ticker is \
             {heartbeat_ratio:.4} of the quiet run (min {HEARTBEAT_RATIO_MIN:.2})"
        );
        std::process::exit(1);
    }
}
