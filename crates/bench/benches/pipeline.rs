//! Pipeline benchmarks: generation, negotiation, ingestion — plus the
//! DESIGN.md ablations of single-thread vs worker-pool ingestion and
//! of the serial vs month-sharded streaming study runner.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tlscope::analysis::{Study, StudyConfig};
use tlscope::chron::{Date, Month};
use tlscope::notary::{
    ingest_flow, ingest_parallel, ingest_serial, ingest_supervised_with, NotaryAggregate,
    PipelineConfig, PipelineMetrics, TappedFlow,
};
use tlscope::scanner;
use tlscope::servers::{negotiate, ServerPopulation};
use tlscope::traffic::FaultInjector;
use tlscope_bench::bench_flows;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/generate");
    g.throughput(Throughput::Elements(2000));
    g.bench_function("month_2000conns", |b| {
        b.iter(|| bench_flows(Month::ym(2016, 3), 2000, 7).len())
    });
    g.finish();
}

fn bench_negotiation(c: &mut Criterion) {
    let profile = tlscope::servers::ServerProfile::baseline("bench");
    let hello = scanner::probe::chrome_2015();
    c.bench_function("pipeline/negotiate", |b| {
        b.iter(|| negotiate::respond(&profile, &hello, [1; 32]).unwrap())
    });
}

fn bench_ingestion(c: &mut Criterion) {
    let flows = bench_flows(Month::ym(2016, 3), 4000, 11);
    let mut g = c.benchmark_group("pipeline/ingest");
    g.throughput(Throughput::Elements(flows.len() as u64));
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter_batched(
            || flows.clone(),
            |f| ingest_serial(f).total(),
            BatchSize::LargeInput,
        )
    });
    for workers in [2usize, 4, 8] {
        g.bench_function(format!("parallel_{workers}"), |b| {
            b.iter_batched(
                || flows.clone(),
                |f| ingest_parallel(f, workers).total(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The serial-vs-sharded ablation for the streaming study runner: the
/// same 12-month window run with 1 worker (serial baseline) and with
/// 2/4/8 month-shard workers through the fused generate→ingest loop.
/// Results are bit-identical across all worker counts; only wall-clock
/// differs (scaling requires physical cores — see DESIGN.md).
fn bench_study_runner(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/study");
    let months = 12u64;
    let conns = 500u32;
    g.throughput(Throughput::Elements(months * conns as u64));
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let name = if workers == 1 {
            "serial".to_string()
        } else {
            format!("sharded_{workers}")
        };
        g.bench_function(name, |b| {
            let study = Study::new(StudyConfig {
                connections_per_month: conns,
                start: Month::ym(2015, 1),
                end: Month::ym(2015, 12),
                workers,
                faults: FaultInjector::none(),
                ..StudyConfig::default()
            });
            b.iter(|| study.run_passive().total())
        });
    }
    g.finish();
}

/// Cost of supervision under fault: the same 4000-flow workload
/// through the supervised pipeline with a clean processor versus one
/// where 1 % of flows are poison (panic the extractor and must be
/// bisected down to quarantine). Measures the recovery overhead of
/// respawn + bisection relative to the fault-free path.
fn bench_supervised_recovery(c: &mut Criterion) {
    let clean = bench_flows(Month::ym(2016, 3), 4000, 11);
    let mut poisoned = clean.clone();
    for flow in poisoned.iter_mut().step_by(100) {
        flow.client = b"\xde\xad poison marker".to_vec();
    }
    let poison = |agg: &mut NotaryAggregate, flow: &TappedFlow| {
        if flow.client.starts_with(b"\xde\xad") {
            panic!("poison flow");
        }
        ingest_flow(agg, flow);
    };
    let cfg = PipelineConfig::default();
    let mut g = c.benchmark_group("pipeline/supervised");
    g.throughput(Throughput::Elements(clean.len() as u64));
    g.sample_size(10);
    g.bench_function("clean", |b| {
        b.iter_batched(
            || clean.clone(),
            |f| ingest_supervised_with(f, &cfg, &PipelineMetrics::new(), poison).total(),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("poison_1pct", |b| {
        b.iter_batched(
            || poisoned.clone(),
            |f| ingest_supervised_with(f, &cfg, &PipelineMetrics::new(), poison).total(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_scan_sweep(c: &mut Criterion) {
    let pop = ServerPopulation::new();
    let mut g = c.benchmark_group("pipeline/scan");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("sweep_1000hosts", |b| {
        b.iter(|| scanner::sweep(&pop, Date::ymd(2016, 6, 1), 1000, 3))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_negotiation,
    bench_ingestion,
    bench_study_runner,
    bench_supervised_recovery,
    bench_scan_sweep
);
criterion_main!(benches);
