//! One benchmark per paper artefact: regenerate every table and figure
//! from a shared study run, timing the analysis stage, and printing the
//! headline series values alongside the paper's (the full comparison
//! lives in EXPERIMENTS.md; the `repro` binary prints complete
//! renderings).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};
use tlscope::analysis::{figures, sections, tables, Study, StudyConfig};
use tlscope::chron::Month;
use tlscope::notary::NotaryAggregate;
use tlscope::scanner::ScanSnapshot;

fn passive() -> &'static NotaryAggregate {
    static AGG: OnceLock<NotaryAggregate> = OnceLock::new();
    AGG.get_or_init(|| {
        let mut cfg = StudyConfig::quick();
        cfg.connections_per_month = 2_500;
        let study = Study::new(cfg);
        let agg = study.run_passive();
        print_headline(&agg);
        agg
    })
}

fn scans() -> &'static Vec<ScanSnapshot> {
    static SCANS: OnceLock<Vec<ScanSnapshot>> = OnceLock::new();
    SCANS.get_or_init(|| {
        let mut cfg = StudyConfig::quick();
        cfg.scan_hosts = 2_000;
        Study::new(cfg).run_active()
    })
}

fn print_headline(agg: &NotaryAggregate) {
    let fig1 = figures::fig1(agg);
    let fig2 = figures::fig2(agg);
    let fig8 = figures::fig8(agg);
    let feb18 = Month::ym(2018, 2);
    let aug13 = Month::ym(2013, 8);
    eprintln!("── paper-vs-measured headline (see EXPERIMENTS.md) ──");
    eprintln!(
        "fig1 TLS1.2 2018-02: paper ~90%  measured {:.1}%",
        fig1.value_at("TLSv12", feb18).unwrap_or(f64::NAN)
    );
    eprintln!(
        "fig2 RC4 2013-08:    paper ~60%  measured {:.1}%",
        fig2.value_at("RC4", aug13).unwrap_or(f64::NAN)
    );
    eprintln!(
        "fig8 ECDHE 2018-02:  paper ~90%  measured {:.1}%",
        fig8.value_at("ECDHE", feb18).unwrap_or(f64::NAN)
    );
}

fn bench_figures(c: &mut Criterion) {
    let agg = passive();
    let mut g = c.benchmark_group("experiments/figures");
    g.bench_function("fig1", |b| b.iter(|| figures::fig1(agg)));
    g.bench_function("fig2", |b| b.iter(|| figures::fig2(agg)));
    g.bench_function("fig3", |b| b.iter(|| figures::fig3(agg)));
    g.bench_function("fig4", |b| b.iter(|| figures::fig4(agg)));
    g.bench_function("fig5", |b| b.iter(|| figures::fig5(agg)));
    g.bench_function("fig6", |b| b.iter(|| figures::fig6(agg)));
    g.bench_function("fig7", |b| b.iter(|| figures::fig7(agg)));
    g.bench_function("fig8", |b| b.iter(|| figures::fig8(agg)));
    g.bench_function("fig9", |b| b.iter(|| figures::fig9(agg)));
    g.bench_function("fig10", |b| b.iter(|| figures::fig10(agg)));
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let agg = passive();
    let mut g = c.benchmark_group("experiments/tables");
    g.bench_function("table1", |b| b.iter(tables::table1));
    g.bench_function("table2", |b| b.iter(|| tables::table2(agg)));
    g.bench_function("table3", |b| b.iter(tables::table3));
    g.bench_function("table4", |b| b.iter(tables::table4));
    g.bench_function("table5", |b| b.iter(tables::table5));
    g.bench_function("table6", |b| b.iter(tables::table6));
    g.finish();
}

fn bench_sections(c: &mut Criterion) {
    let agg = passive();
    let sc = scans();
    let mut g = c.benchmark_group("experiments/sections");
    g.bench_function("s4.1", |b| b.iter(|| sections::s4_1(agg)));
    g.bench_function("s5.1", |b| b.iter(|| sections::s5_1(agg, sc)));
    g.bench_function("s5.4", |b| b.iter(|| sections::s5_4(agg, sc)));
    g.bench_function("s5.5", |b| b.iter(|| sections::s5_5(agg)));
    g.bench_function("s5.6", |b| b.iter(|| sections::s5_6(agg, sc)));
    g.bench_function("s6.1", |b| b.iter(|| sections::s6_1(agg)));
    g.bench_function("s6.2", |b| b.iter(|| sections::s6_2(agg)));
    g.bench_function("s6.3", |b| b.iter(|| sections::s6_3(agg)));
    g.bench_function("s6.4", |b| b.iter(|| sections::s6_4(agg)));
    g.bench_function("censys", |b| b.iter(|| sections::censys_series(sc)));
    g.finish();
}

fn bench_impact(c: &mut Criterion) {
    let agg = passive();
    let fig2 = figures::fig2(agg);
    let rc4 = tlscope::analysis::attack("RC4").unwrap();
    c.bench_function("experiments/impact_estimate", |b| {
        b.iter(|| tlscope::analysis::estimate_impact(&fig2, "RC4", rc4, 12))
    });
}

criterion_group!(
    benches,
    bench_figures,
    bench_tables,
    bench_sections,
    bench_impact
);
criterion_main!(benches);
