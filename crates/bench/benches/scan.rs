//! scan/sweep — active-scan engine throughput and allocation bench.
//!
//! Like the `alloc` bench this is a plain `main` emitting a
//! machine-readable file, `BENCH_scan.json`, at the workspace root.
//! Run it with the counting allocator enabled:
//!
//! ```text
//! cargo bench -p tlscope-bench --bench scan --features alloc-counter -- --fast
//! ```
//!
//! It measures three things about one Censys-style sweep:
//!
//! 1. **Serial throughput** — hosts/s and probes/s through the
//!    prepared-probe + `decide` hot loop.
//! 2. **Sharded throughput** — the same sweep through
//!    `sweep_sharded` at 4 workers, reported as a ratio against
//!    serial (≈1× on a single-core runner; the point on such hosts is
//!    the bit-identical result, not speed).
//! 3. **Allocations per host** — counted over the serial sweep, gated
//!    against [`SCAN_ALLOC_BUDGET_PER_HOST`]; the bench exits non-zero
//!    past budget. A naive per-host loop that re-materialises the
//!    probe set each host (the pre-PR shape, still available as
//!    `probe_host`) is measured alongside as the comparison point.
//! 4. **Faulted throughput** — the same sweep under the `stress`
//!    fault profile: retries, drops, and timeouts in the hot loop,
//!    with the loss counters and the two-part accounting invariant
//!    reported. Fault draws are pure arithmetic, so this row shares
//!    the serial row's allocation budget.
//!
//! Without `--features alloc-counter` allocation counts read as zero
//! and the budget check is skipped.

use std::time::Instant;

use tlscope::chron::Date;
use tlscope::scanner::{
    probe_host, sweep, sweep_sharded, sweep_sharded_with, ScanFaults, ScanMetrics, ScanSnapshot,
};
use tlscope::servers::ServerPopulation;
use tlscope_bench::SCAN_ALLOC_BUDGET_PER_HOST;

#[cfg(feature = "alloc-counter")]
use tlscope_bench::alloc_counter;

#[cfg(not(feature = "alloc-counter"))]
mod alloc_counter {
    /// Stub so the bench compiles without the counting allocator; all
    /// counts read as zero and the budget check is skipped.
    pub fn counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
        (f(), 0)
    }
}

/// Probes per host in the sweep probe set (Chrome, SSL3-only, export).
const PROBES_PER_HOST: f64 = 3.0;

const SEED: u64 = 0x5CA7;

/// Best-of-`reps` wall time for `f`, which must be repeatable.
fn best_secs(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let hosts: u32 = if fast { 2_000 } else { 10_000 };
    let reps: u32 = if fast { 2 } else { 3 };
    let workers = 4usize;
    let date = Date::ymd(2016, 6, 1);
    let pop = ServerPopulation::new();

    // Warm up lazy population state outside the counted region.
    let warm = sweep(&pop, date, 256.min(hosts), SEED);
    std::hint::black_box(&warm);

    // --- Serial sweep: allocations and throughput. ---
    let (serial_snap, serial_allocs) = alloc_counter::counted(|| sweep(&pop, date, hosts, SEED));
    let serial_secs = best_secs(reps, || {
        std::hint::black_box(sweep(&pop, date, hosts, SEED));
    });

    // --- Sharded sweep: same work over a thread-scoped work queue.
    // Counting is thread-local, so only wall time is comparable here;
    // the result itself must be bit-identical to serial.
    let metrics = ScanMetrics::new();
    let sharded_snap = sweep_sharded(&pop, date, hosts, SEED, workers, &metrics);
    assert_eq!(
        serial_snap, sharded_snap,
        "sharded sweep diverged from serial"
    );
    let sharded_secs = best_secs(reps, || {
        let m = ScanMetrics::new();
        std::hint::black_box(sweep_sharded(&pop, date, hosts, SEED, workers, &m));
    });
    let accounting = metrics.snapshot().accounting_holds();

    // --- Faulted sweep: stress profile through the same engine. ---
    let faults = ScanFaults::stress();
    let fault_metrics = ScanMetrics::new();
    let (_, faulted_allocs) = alloc_counter::counted(|| {
        std::hint::black_box(sweep_sharded_with(
            &pop,
            date,
            hosts,
            SEED,
            1,
            &fault_metrics,
            &faults,
        ));
    });
    let faulted_secs = best_secs(reps, || {
        let m = ScanMetrics::new();
        std::hint::black_box(sweep_sharded_with(&pop, date, hosts, SEED, 1, &m, &faults));
    });
    let fs = fault_metrics.snapshot();
    assert!(fs.hosts_dropped > 0, "stress profile must drop hosts");
    assert!(fs.probes_timed_out > 0, "stress profile must time out");

    // --- Naive per-host baseline: rebuild every probe for every host,
    // the shape the prepared-probe path replaced. ---
    let naive_hosts = hosts.min(2_000);
    let (_, naive_allocs) = alloc_counter::counted(|| {
        let mut snap = ScanSnapshot::new(date);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(SEED);
        for _ in 0..naive_hosts {
            let profile = pop.sample_host(date, &mut rng);
            probe_host(&profile, &mut snap);
        }
        std::hint::black_box(&snap);
    });

    let n = hosts as f64;
    let serial_apc = serial_allocs as f64 / n;
    let faulted_apc = faulted_allocs as f64 / n;
    let naive_apc = naive_allocs as f64 / naive_hosts as f64;
    let serial_hps = n / serial_secs;
    let sharded_hps = n / sharded_secs;
    let faulted_hps = n / faulted_secs;
    let counting = cfg!(feature = "alloc-counter");
    let budget_pass = !counting
        || (serial_apc <= SCAN_ALLOC_BUDGET_PER_HOST && faulted_apc <= SCAN_ALLOC_BUDGET_PER_HOST);
    let reduction = if counting && serial_apc > 0.0 {
        naive_apc / serial_apc
    } else {
        0.0
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scan/sweep\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"hosts\": {hosts},\n",
            "  \"date\": \"2016-06-01\",\n",
            "  \"alloc_counter\": {counting},\n",
            "  \"serial\": {{ \"hosts_per_sec\": {ser_hps:.0}, \"probes_per_sec\": {ser_pps:.0}, \"allocs_per_host\": {ser_apc:.3} }},\n",
            "  \"sharded\": {{ \"workers\": {workers}, \"hosts_per_sec\": {sh_hps:.0}, \"vs_serial\": {ratio:.2}, \"bit_identical\": true, \"accounting_holds\": {acct} }},\n",
            "  \"faulted\": {{ \"profile\": \"stress\", \"hosts_per_sec\": {f_hps:.0}, \"allocs_per_host\": {f_apc:.3}, \"hosts_dropped\": {f_dropped}, \"probes_timed_out\": {f_timed}, \"host_retries\": {f_retries}, \"accounting_holds\": {f_acct} }},\n",
            "  \"baseline_naive_probe_rebuild\": {{ \"allocs_per_host\": {naive_apc:.3} }},\n",
            "  \"improvement\": {{ \"alloc_reduction_factor\": {red:.1} }},\n",
            "  \"budget\": {{ \"allocs_per_host_max\": {budget:.1}, \"pass\": {pass} }}\n",
            "}}\n"
        ),
        mode = if fast { "fast" } else { "full" },
        hosts = hosts,
        counting = counting,
        ser_hps = serial_hps,
        ser_pps = serial_hps * PROBES_PER_HOST,
        ser_apc = serial_apc,
        workers = workers,
        sh_hps = sharded_hps,
        ratio = sharded_hps / serial_hps,
        acct = accounting,
        f_hps = faulted_hps,
        f_apc = faulted_apc,
        f_dropped = fs.hosts_dropped,
        f_timed = fs.probes_timed_out,
        f_retries = fs.host_retries,
        f_acct = fs.accounting_holds(),
        naive_apc = naive_apc,
        red = reduction,
        budget = SCAN_ALLOC_BUDGET_PER_HOST,
        pass = budget_pass,
    );

    print!("{json}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    }

    if !budget_pass {
        eprintln!(
            "scan alloc budget exceeded: serial {serial_apc:.3} / faulted {faulted_apc:.3} allocs/host > {SCAN_ALLOC_BUDGET_PER_HOST:.1}"
        );
        std::process::exit(1);
    }
}
