//! # tlscope-bench
//!
//! Criterion benchmarks for the tlscope workspace. The benchmarks live
//! in `benches/`; this library hosts the shared workload helpers and,
//! behind the `alloc-counter` feature, a counting global allocator used
//! by the `alloc` bench to report heap allocations per connection.

#![cfg_attr(not(feature = "alloc-counter"), forbid(unsafe_code))]

use tlscope::chron::Month;
use tlscope::notary::TappedFlow;
use tlscope::traffic::{FaultInjector, Generator, TrafficConfig};

/// Regression budget for the fused generation→ingestion pipeline, in
/// heap allocations per connection. Enforced by the `alloc` bench
/// (full workload) and by the alloc-budget regression test (marginal
/// cost, immune to one-time table growth). With the borrowed fast
/// path — generation into reused scratch, extraction refilled into a
/// thread-local record slot, flow buffers never owned — the
/// steady-state cost is amortized table growth plus first-sight
/// fingerprint interning, well under one alloc/conn on the full
/// workload; 4.0 leaves headroom for allocator noise and small
/// feature growth without letting the structural win erode.
pub const PIPELINE_ALLOC_BUDGET_PER_CONN: f64 = 4.0;

/// Regression budget for the active-scan hot loop, in heap
/// allocations per probed host. Enforced by the `scan` bench. With the
/// campaign probe set prepared once and negotiation going through the
/// allocation-free `decide` core, the only per-host heap traffic left
/// is the sampled profile's preference list (and, for ECC-capable
/// profiles, its curve list) — ~1.6–1.9 allocs/host steady-state; the
/// naive per-host probe rebuild this PR replaced cost ~60×.
pub const SCAN_ALLOC_BUDGET_PER_HOST: f64 = 2.0;

/// Generate one month of flows at a given volume for bench workloads.
pub fn bench_flows(month: Month, n: u32, seed: u64) -> Vec<TappedFlow> {
    let generator = Generator::new(TrafficConfig {
        seed,
        connections_per_month: n,
        faults: FaultInjector::none(),
    });
    generator
        .month(month)
        .into_iter()
        .map(TappedFlow::from)
        .collect()
}

/// A counting wrapper around the system allocator. Installed as the
/// global allocator whenever this crate is built with the
/// `alloc-counter` feature, so the `alloc` bench (and the alloc-budget
/// regression test) can report heap allocations per connection.
///
/// Counters are thread-local: a measurement on one thread is not
/// polluted by concurrent test threads or allocator traffic elsewhere
/// in the process. The thread locals are const-initialised `Cell`s, so
/// reading them from inside `alloc` cannot itself allocate (no lazy
/// init, no destructor registration).
#[cfg(feature = "alloc-counter")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
        static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// Forwarding allocator that counts every `alloc`/`alloc_zeroed`/
    /// `realloc` on the calling thread. `dealloc` is free.
    pub struct CountingAlloc;

    fn record(bytes: usize) {
        // try_with: the thread-local may be unavailable during thread
        // teardown; dropping a count there is fine.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Reset this thread's counters to zero.
    pub fn reset() {
        let _ = ALLOCS.try_with(|c| c.set(0));
        let _ = ALLOC_BYTES.try_with(|c| c.set(0));
    }

    /// Heap allocations performed by this thread since the last `reset`.
    pub fn thread_allocations() -> u64 {
        ALLOCS.try_with(Cell::get).unwrap_or(0)
    }

    /// Bytes requested from the allocator by this thread since `reset`.
    pub fn thread_alloc_bytes() -> u64 {
        ALLOC_BYTES.try_with(Cell::get).unwrap_or(0)
    }

    /// Run `f` and return `(result, allocations)` for this thread.
    pub fn counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = thread_allocations();
        let out = f();
        (out, thread_allocations() - before)
    }
}
