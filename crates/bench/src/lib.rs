//! # tlscope-bench
//!
//! Criterion benchmarks for the tlscope workspace. The benchmarks live
//! in `benches/`; this library only hosts the shared workload helpers.

#![forbid(unsafe_code)]

use tlscope::chron::Month;
use tlscope::notary::TappedFlow;
use tlscope::traffic::{FaultInjector, Generator, TrafficConfig};

/// Generate one month of flows at a given volume for bench workloads.
pub fn bench_flows(month: Month, n: u32, seed: u64) -> Vec<TappedFlow> {
    let generator = Generator::new(TrafficConfig {
        seed,
        connections_per_month: n,
        faults: FaultInjector::none(),
    });
    generator
        .month(month)
        .into_iter()
        .map(TappedFlow::from)
        .collect()
}
