//! Alloc-budget regression test: pins the fused generation→ingestion
//! hot path under [`PIPELINE_ALLOC_BUDGET_PER_CONN`] heap allocations
//! per connection. Runs only with the counting allocator installed:
//!
//! ```text
//! cargo test -p tlscope-bench --features alloc-counter --test alloc_budget
//! ```
//!
//! The check measures *marginal* allocations per connection — the
//! difference between a large and a small workload divided by the
//! connection delta — so one-time costs (interner tables, month maps,
//! hash-map growth) cancel out and the test stays meaningful at
//! test-sized workloads. It exercises the borrowed fast path exactly
//! as the fused study runner does: scratch borrows from the
//! generator's stream folded straight into the aggregate.

#![cfg(feature = "alloc-counter")]

use tlscope::chron::Month;
use tlscope::notary::{ingest_borrowed, NotaryAggregate};
use tlscope::traffic::{FaultInjector, Generator, TrafficConfig};
use tlscope_bench::{alloc_counter, PIPELINE_ALLOC_BUDGET_PER_CONN};

fn fused_pipeline_allocs(conns: u32) -> u64 {
    let gen = Generator::new(TrafficConfig {
        seed: 0x715C0,
        connections_per_month: conns,
        faults: FaultInjector::none(),
    });
    let month = Month::new(2015, 6).unwrap();
    // Warm thread-local extraction scratch outside the counted region.
    let mut agg = NotaryAggregate::new();
    let mut stream = gen.stream_month(month);
    for _ in 0..64 {
        let Some(flow) = stream.next_flow() else {
            break;
        };
        ingest_borrowed(&mut agg, flow.date, flow.port, flow.client, flow.server);
    }
    drop(stream);
    drop(agg);
    let (_, allocs) = alloc_counter::counted(|| {
        let mut agg = NotaryAggregate::new();
        let mut stream = gen.stream_month(month);
        while let Some(flow) = stream.next_flow() {
            ingest_borrowed(&mut agg, flow.date, flow.port, flow.client, flow.server);
        }
        std::hint::black_box(&agg);
    });
    allocs
}

#[test]
fn marginal_pipeline_allocs_per_conn_stay_under_budget() {
    let (small, large) = (2_000u32, 6_000u32);
    let a_small = fused_pipeline_allocs(small);
    let a_large = fused_pipeline_allocs(large);
    // With the borrowed path the marginal cost can be ~zero; the
    // larger run may allocate no more than the smaller once tables
    // have grown, so the delta saturates instead of asserting growth.
    let marginal = a_large.saturating_sub(a_small) as f64 / (large - small) as f64;
    assert!(
        marginal <= PIPELINE_ALLOC_BUDGET_PER_CONN,
        "pipeline hot path regressed: {marginal:.3} allocs/conn > budget \
         {PIPELINE_ALLOC_BUDGET_PER_CONN:.1} (small={a_small}, large={a_large})"
    );
}
